"""The action executor: the single mutation path into the storage layer.

Policies plan; the :class:`ActionExecutor` applies.  Every
:class:`~repro.actions.plan.ActionPlan` goes through :meth:`ActionExecutor.apply`,
which routes each action to the one
:class:`~repro.storage.controller.StorageController` / enclosure call
that realizes it, consults the fault machinery exactly where the
pre-action code paths did (``MigrationAbortedError`` from the
controller; the degraded-mode cool-down gate for power-off enablement),
and emits one :class:`~repro.actions.records.ActionRecord` per action.

Timing model (matches the serialized pre-action call sequences
bit-for-bit):

* consecutive :class:`~repro.actions.records.MigrateItem` actions chain —
  each starts at the previous migration's completion, the §V-A
  one-at-a-time throttled migration;
* every other action starts at the plan's submission time ``now``.

``dry_run=True`` costs a plan without mutating anything: no controller
call, no log append, no counter change, no cool-down bookkeeping — the
books are bit-identical before and after.  Dry-run records carry
analytic cost estimates (transfer seconds at bulk/migration bandwidth,
incremental active-over-idle joules) and predicted outcomes from pure
reads only: capacity and placement checks, the degraded-mode gate
evaluated without arming it, and scheduled outage windows via
:meth:`repro.faults.clock.FaultClock.outage_at`.  One-shot
``MigrationAbort`` injections are *not* predicted — consulting them
consumes them, which a dry run must never do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.actions.plan import ActionPlan
from repro.actions.records import (
    Action,
    ActionOutcome,
    ActionRecord,
    ArchiveItem,
    ChargeBlockMigration,
    DemoteItem,
    EnableWriteDelay,
    FlushItem,
    FlushWriteDelay,
    MigrateItem,
    PreloadItem,
    PromoteItem,
    ReplicateItem,
    SetPowerOffEnabled,
    UnpinItem,
)
from repro.errors import CapacityError, MigrationAbortedError, UsageError
from repro.storage.cache import PAGE_BYTES
from repro.storage.tiers import TierKind

#: Action types whose applied/aborted counts roll into the executor's
#: migration aggregates: all of them delegate to the controller's
#: migration machinery, so the auditor's one-directional consistency
#: check against ``controller.migration_count`` must see them.
#: :class:`ReplicateItem` is deliberately absent — a replica copy is a
#: transfer but not a move, and the controller books it under
#: ``replication_count`` / ``replicated_bytes``, never as a migration.
_MIGRATION_ACTIONS = (
    MigrateItem,
    ChargeBlockMigration,
    PromoteItem,
    DemoteItem,
    ArchiveItem,
)

#: Inter-tier move actions that chain on the serialized migration clock.
TierMoveAction = PromoteItem | DemoteItem | ArchiveItem | ReplicateItem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import EcoStorConfig
    from repro.faults.clock import FaultClock
    from repro.storage.controller import StorageController
    from repro.storage.enclosure import DiskEnclosure

__all__ = ["ActionExecutor", "ApplyReport"]


@dataclass(frozen=True)
class ApplyReport:
    """Outcome of applying one plan: the records plus timing aggregates."""

    records: tuple[ActionRecord, ...]
    started_at: float
    #: Max completion over all records (``started_at`` for empty plans).
    completed_at: float
    #: End of the serialized migration chain: the last applied
    #: migration's completion, or ``started_at`` if none applied.
    migration_clock: float
    #: Whether this report came from a dry run (nothing was mutated).
    dry_run: bool = False

    def outcome_count(self, outcome: ActionOutcome) -> int:
        """Number of records with the given outcome."""
        return sum(1 for r in self.records if r.outcome is outcome)

    @property
    def moves_executed(self) -> int:
        """Applied :class:`MigrateItem` actions in this plan."""
        return sum(
            1
            for r in self.records
            if isinstance(r.action, MigrateItem)
            and r.outcome is ActionOutcome.APPLIED
        )

    @property
    def moves_aborted(self) -> int:
        """Fault-aborted :class:`MigrateItem` actions in this plan."""
        return sum(
            1
            for r in self.records
            if isinstance(r.action, MigrateItem)
            and r.outcome is ActionOutcome.ABORTED_BY_FAULT
        )

    @property
    def bytes_moved(self) -> int:
        """Payload bytes of applied :class:`MigrateItem` actions."""
        return sum(
            r.cost_bytes
            for r in self.records
            if isinstance(r.action, MigrateItem)
            and r.outcome is ActionOutcome.APPLIED
        )


class ActionExecutor:
    """Applies action plans to the storage layer; owns the action log.

    The executor is the *only* component that may call the controller's
    mutators or an enclosure's power-off enablement (lint rule R9
    enforces this across ``src/``).  It also owns the degraded-mode
    power-off gate that used to live on the policy base class: the
    per-enclosure cool-down state must sit beside the component that
    applies power decisions, not on each planner.
    """

    def __init__(
        self,
        controller: StorageController,
        config: EcoStorConfig | None = None,
        fault_clock: FaultClock | None = None,
    ) -> None:
        self.controller = controller
        self.config = config
        self.fault_clock = fault_clock
        #: Every record of every live (non-dry) apply, in order.
        self.log: list[ActionRecord] = []
        #: Benchmarks may disable log retention to measure its overhead;
        #: counters keep updating either way.
        self.record_log = True

        # Outcome counters (live applies only).
        self.actions_applied = 0
        self.actions_aborted = 0
        self.actions_vetoed = 0
        self.actions_rejected = 0
        # Migration-flavoured aggregates, for the invariant auditor's
        # one-directional consistency check against controller books.
        self.migrations_applied = 0
        self.migrations_aborted = 0
        self.migrated_bytes_applied = 0
        # Tier-lifecycle aggregates (repro.storage.tiers).
        self.promotes_applied = 0
        self.demotes_applied = 0
        self.archives_applied = 0
        self.replicates_applied = 0
        #: Items named by any :class:`PromoteItem` record, whatever the
        #: outcome — the auditor's "no service from an archived copy
        #: without a promote record" check consults this.
        self.promote_attempt_items: set[str] = set()

        # Degraded-mode gate state (was PowerPolicy._cooldown_until).
        self._cooldown_until: dict[str, float] = {}
        #: Times the gate vetoed a power-off enablement.
        self.degraded_cooldowns = 0

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable executor state (:mod:`repro.persistence`).

        The action log rides along record-for-record (records are frozen
        dataclasses of frozen actions — directly picklable), together
        with every outcome counter and the degraded-mode gate's
        per-enclosure cool-down deadlines.
        """
        return {
            "log": list(self.log),
            "actions_applied": self.actions_applied,
            "actions_aborted": self.actions_aborted,
            "actions_vetoed": self.actions_vetoed,
            "actions_rejected": self.actions_rejected,
            "migrations_applied": self.migrations_applied,
            "migrations_aborted": self.migrations_aborted,
            "migrated_bytes_applied": self.migrated_bytes_applied,
            "cooldown_until": dict(self._cooldown_until),
            "degraded_cooldowns": self.degraded_cooldowns,
            "promotes_applied": self.promotes_applied,
            "demotes_applied": self.demotes_applied,
            "archives_applied": self.archives_applied,
            "replicates_applied": self.replicates_applied,
            "promote_attempt_items": sorted(self.promote_attempt_items),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the executor exactly as :meth:`snapshot_state` captured it."""
        self.log = list(state["log"])
        self.actions_applied = state["actions_applied"]
        self.actions_aborted = state["actions_aborted"]
        self.actions_vetoed = state["actions_vetoed"]
        self.actions_rejected = state["actions_rejected"]
        self.migrations_applied = state["migrations_applied"]
        self.migrations_aborted = state["migrations_aborted"]
        self.migrated_bytes_applied = state["migrated_bytes_applied"]
        self._cooldown_until = dict(state["cooldown_until"])
        self.degraded_cooldowns = state["degraded_cooldowns"]
        self.promotes_applied = state.get("promotes_applied", 0)
        self.demotes_applied = state.get("demotes_applied", 0)
        self.archives_applied = state.get("archives_applied", 0)
        self.replicates_applied = state.get("replicates_applied", 0)
        self.promote_attempt_items = set(
            state.get("promote_attempt_items", ())
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def apply(
        self, now: float, plan: ActionPlan, dry_run: bool = False
    ) -> ApplyReport:
        """Apply ``plan`` starting at virtual time ``now``.

        Returns one :class:`ApplyReport` carrying a record per action in
        plan order.  With ``dry_run=True`` nothing is mutated and
        nothing is logged; outcomes and costs are predictions (see the
        module docstring for what dry runs can and cannot foresee).
        """
        records: list[ActionRecord] = []
        migration_clock = now
        completed = now
        for action in plan:
            record, migration_clock = self._apply_one(
                now, action, migration_clock, dry_run
            )
            records.append(record)
            completed = max(completed, record.completion)
        if not dry_run:
            self._count(records)
            if self.record_log:
                self.log.extend(records)
        return ApplyReport(
            records=tuple(records),
            started_at=now,
            completed_at=completed,
            migration_clock=migration_clock,
            dry_run=dry_run,
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _count(self, records: list[ActionRecord]) -> None:
        for record in records:
            outcome = record.outcome
            if outcome is ActionOutcome.APPLIED:
                self.actions_applied += 1
            elif outcome is ActionOutcome.ABORTED_BY_FAULT:
                self.actions_aborted += 1
            elif outcome is ActionOutcome.VETOED_BY_DEGRADED_MODE:
                self.actions_vetoed += 1
            else:
                self.actions_rejected += 1
            action = record.action
            if isinstance(action, _MIGRATION_ACTIONS):
                if outcome is ActionOutcome.APPLIED:
                    self.migrations_applied += 1
                    self.migrated_bytes_applied += record.cost_bytes
                elif outcome is ActionOutcome.ABORTED_BY_FAULT:
                    self.migrations_aborted += 1
            if isinstance(action, PromoteItem):
                self.promote_attempt_items.add(action.item_id)
                if outcome is ActionOutcome.APPLIED:
                    self.promotes_applied += 1
            elif isinstance(action, DemoteItem):
                if outcome is ActionOutcome.APPLIED:
                    self.demotes_applied += 1
            elif isinstance(action, ArchiveItem):
                if outcome is ActionOutcome.APPLIED:
                    self.archives_applied += 1
            elif isinstance(action, ReplicateItem):
                if outcome is ActionOutcome.APPLIED:
                    self.replicates_applied += 1

    def _delta_watts(self, enclosure: DiskEnclosure) -> float:
        model = enclosure.power_model
        return model.active_watts - model.idle_watts

    def _mean_delta_watts(self) -> float:
        enclosures = self.controller.virtualization.enclosures()
        if not enclosures:
            return 0.0
        return sum(self._delta_watts(e) for e in enclosures) / len(enclosures)

    def _bulk_seconds(self, size_bytes: int) -> float:
        return size_bytes / self.controller.bulk_bandwidth_bps

    # ------------------------------------------------------------------
    # per-action application
    # ------------------------------------------------------------------
    def _apply_one(
        self, now: float, action: Action, migration_clock: float, dry_run: bool
    ) -> tuple[ActionRecord, float]:
        if isinstance(action, MigrateItem):
            return self._apply_migrate(action, migration_clock, dry_run)
        if isinstance(
            action, (PromoteItem, DemoteItem, ArchiveItem, ReplicateItem)
        ):
            return self._apply_tier_move(action, migration_clock, dry_run)
        if isinstance(action, PreloadItem):
            return self._apply_preload(now, action, dry_run), migration_clock
        if isinstance(action, UnpinItem):
            return self._apply_unpin(now, action, dry_run), migration_clock
        if isinstance(action, EnableWriteDelay):
            return (
                self._apply_write_delay(now, action, dry_run),
                migration_clock,
            )
        if isinstance(action, FlushItem):
            return self._apply_flush_item(now, action, dry_run), migration_clock
        if isinstance(action, FlushWriteDelay):
            return self._apply_flush_all(now, action, dry_run), migration_clock
        if isinstance(action, SetPowerOffEnabled):
            return self._apply_power_off(now, action, dry_run), migration_clock
        if isinstance(action, ChargeBlockMigration):
            return (
                self._apply_block_charge(now, action, dry_run),
                migration_clock,
            )
        raise UsageError(f"executor cannot apply action {action!r}")

    def _apply_migrate(
        self, action: MigrateItem, start: float, dry_run: bool
    ) -> tuple[ActionRecord, float]:
        controller = self.controller
        virt = controller.virtualization
        item_id = action.item_id
        target = action.target_enclosure

        def rejected(reason: str) -> tuple[ActionRecord, float]:
            return (
                ActionRecord(
                    action, ActionOutcome.REJECTED, start, start, reason=reason
                ),
                start,
            )

        if not virt.has_item(item_id):
            return rejected("unknown-item")
        src = virt.enclosure_of(item_id)
        if src.name == target:
            return rejected("already-placed")
        size = virt.item_size(item_id)
        dst = virt.enclosure(target)
        busy = self._bulk_seconds(size)
        joules = (self._delta_watts(src) + self._delta_watts(dst)) * busy

        if dry_run:
            if dst.capacity_bytes and (
                virt.used_bytes(target) + size > dst.capacity_bytes
            ):
                return rejected("capacity")
            clock = self.fault_clock
            if clock is not None and any(
                clock.outage_at(name, start) is not None
                for name in (src.name, target)
            ):
                return (
                    ActionRecord(
                        action,
                        ActionOutcome.ABORTED_BY_FAULT,
                        start,
                        start,
                        reason="outage",
                    ),
                    start,
                )
            completion = start + size / controller.migration_throughput_bps
            return (
                ActionRecord(
                    action,
                    ActionOutcome.APPLIED,
                    start,
                    completion,
                    cost_seconds=completion - start,
                    cost_joules=joules,
                    cost_bytes=size,
                ),
                completion,
            )

        try:
            completion = controller.migrate_item(start, item_id, target)
        except CapacityError:
            return rejected("capacity")
        except MigrationAbortedError:
            return (
                ActionRecord(
                    action,
                    ActionOutcome.ABORTED_BY_FAULT,
                    start,
                    start,
                    reason="migration-abort",
                ),
                start,
            )
        return (
            ActionRecord(
                action,
                ActionOutcome.APPLIED,
                start,
                completion,
                cost_seconds=completion - start,
                cost_joules=joules,
                cost_bytes=size,
            ),
            completion,
        )

    def _resolve_tier_target(
        self, action: TierMoveAction
    ) -> tuple[str | None, str | None]:
        """Resolve a tier-move action to ``(target device, reject reason)``.

        Pure reads only — safe for dry runs.  Exactly one of the pair is
        non-``None``.  The target device is chosen deterministically
        inside the target tier: the device with the most free bytes that
        fits the item (undeclared-capacity devices count as unbounded),
        ties broken by name.
        """
        virt = self.controller.virtualization
        item_id = action.item_id
        if not virt.has_item(item_id):
            return None, "unknown-item"
        if isinstance(action, ArchiveItem):
            archive_tiers = [
                tier
                for tier in virt.tiers()
                if tier.kind is TierKind.ARCHIVE
            ]
            if not archive_tiers:
                return None, "no-archive-tier"
            target_tier = archive_tiers[0]
        else:
            if action.target_tier not in virt.tier_names:
                return None, "unknown-tier"
            target_tier = virt.tier(action.target_tier)
        current_tier = virt.tier_of_item(item_id)
        if isinstance(action, ReplicateItem):
            if current_tier.name == target_tier.name:
                return None, "already-placed"
        elif current_tier.name == target_tier.name:
            return None, "already-placed"
        elif isinstance(action, PromoteItem):
            if target_tier.kind.rank >= current_tier.kind.rank:
                return None, "not-a-promotion"
        elif target_tier.kind.rank <= current_tier.kind.rank:
            return None, "not-a-demotion"
        size = virt.item_size(item_id)
        primary = virt.enclosure_of(item_id).name
        replicas = (
            virt.replicas_of(item_id)
            if isinstance(action, ReplicateItem)
            else ()
        )
        best: tuple[float, str] | None = None
        for device in target_tier.devices:
            if device == primary or device in replicas:
                continue
            enclosure = virt.enclosure(device)
            if enclosure.capacity_bytes:
                free = (
                    enclosure.capacity_bytes
                    - virt.used_bytes(device)
                    - virt.replica_bytes_on(device)
                )
                if free < size:
                    continue
            else:
                free = float("inf")
            # max free bytes wins; the name tuple compare breaks ties
            # ascending because free is negated.
            key = (-free, device)
            if best is None or key < best:
                best = key
        if best is None:
            return None, "capacity"
        return best[1], None

    def _apply_tier_move(
        self, action: TierMoveAction, start: float, dry_run: bool
    ) -> tuple[ActionRecord, float]:
        """Apply one inter-tier move (promote/demote/archive/replicate).

        Mirrors :meth:`_apply_migrate`: chained on the serialized
        migration clock, fault-abort draws apply, and a resolved target
        device sitting inside the degraded-mode gate's cool-down window
        vetoes the move (migrating onto a drive that keeps failing to
        spin up would strand the data there).
        """
        controller = self.controller
        virt = controller.virtualization
        item_id = action.item_id

        def finish(
            outcome: ActionOutcome, completion: float, reason: str = ""
        ) -> tuple[ActionRecord, float]:
            return (
                ActionRecord(
                    action, outcome, start, completion, reason=reason
                ),
                start,
            )

        target, reject_reason = self._resolve_tier_target(action)
        if target is None:
            return finish(ActionOutcome.REJECTED, start, reject_reason or "")
        if start < self._cooldown_until.get(target, 0.0):
            return finish(
                ActionOutcome.VETOED_BY_DEGRADED_MODE, start, "cooldown"
            )
        size = virt.item_size(item_id)
        src = virt.enclosure_of(item_id)
        dst = virt.enclosure(target)
        busy = self._bulk_seconds(size)
        joules = (self._delta_watts(src) + self._delta_watts(dst)) * busy

        def applied(completion: float) -> tuple[ActionRecord, float]:
            return (
                ActionRecord(
                    action,
                    ActionOutcome.APPLIED,
                    start,
                    completion,
                    cost_seconds=completion - start,
                    cost_joules=joules,
                    cost_bytes=size,
                ),
                completion,
            )

        if dry_run:
            clock = self.fault_clock
            if clock is not None and any(
                clock.outage_at(name, start) is not None
                for name in (src.name, target)
            ):
                return finish(
                    ActionOutcome.ABORTED_BY_FAULT, start, "outage"
                )
            return applied(
                start + size / controller.migration_throughput_bps
            )
        try:
            if isinstance(action, PromoteItem):
                completion = controller.promote_item(start, item_id, target)
            elif isinstance(action, DemoteItem):
                completion = controller.demote_item(start, item_id, target)
            elif isinstance(action, ArchiveItem):
                completion = controller.archive_item(start, item_id, target)
            else:
                completion = controller.replicate_item(start, item_id, target)
        except CapacityError:
            return finish(ActionOutcome.REJECTED, start, "capacity")
        except MigrationAbortedError:
            return finish(
                ActionOutcome.ABORTED_BY_FAULT, start, "migration-abort"
            )
        return applied(completion)

    def _apply_preload(
        self, now: float, action: PreloadItem, dry_run: bool
    ) -> ActionRecord:
        controller = self.controller
        virt = controller.virtualization
        item_id = action.item_id
        if not virt.has_item(item_id):
            return ActionRecord(
                action,
                ActionOutcome.REJECTED,
                now,
                now,
                reason="unknown-item",
            )
        if controller.cache.preload.is_pinned(item_id):
            return ActionRecord(
                action,
                ActionOutcome.APPLIED,
                now,
                now,
                reason="already-pinned",
            )
        size = virt.item_size(item_id)
        joules = self._delta_watts(virt.enclosure_of(item_id)) * (
            self._bulk_seconds(size)
        )
        if dry_run:
            if not controller.cache.preload.fits(size):
                return ActionRecord(
                    action,
                    ActionOutcome.REJECTED,
                    now,
                    now,
                    reason="capacity",
                )
            completion = now + self._bulk_seconds(size)
            return ActionRecord(
                action,
                ActionOutcome.APPLIED,
                now,
                completion,
                cost_seconds=completion - now,
                cost_joules=joules,
                cost_bytes=size,
            )
        try:
            completion = controller.preload_item(now, item_id)
        except CapacityError:
            return ActionRecord(
                action, ActionOutcome.REJECTED, now, now, reason="capacity"
            )
        return ActionRecord(
            action,
            ActionOutcome.APPLIED,
            now,
            completion,
            cost_seconds=completion - now,
            cost_joules=joules,
            cost_bytes=size,
        )

    def _apply_unpin(
        self, now: float, action: UnpinItem, dry_run: bool
    ) -> ActionRecord:
        pinned = self.controller.cache.preload.is_pinned(action.item_id)
        if not dry_run:
            self.controller.unpin_item(action.item_id)
        return ActionRecord(
            action,
            ActionOutcome.APPLIED,
            now,
            now,
            reason="" if pinned else "not-pinned",
        )

    def _apply_write_delay(
        self, now: float, action: EnableWriteDelay, dry_run: bool
    ) -> ActionRecord:
        controller = self.controller
        wd = controller.cache.write_delay
        if dry_run:
            # Estimate: deselected items flush their dirty pages.  The
            # live path skips items still emergency-buffered for an
            # outage; the estimate does not model that refinement.
            stale = sorted(wd.selected_items() - set(action.item_ids))
            flush_bytes = sum(wd.dirty_bytes_of(item) for item in stale)
            seconds = self._bulk_seconds(flush_bytes)
            return ActionRecord(
                action,
                ActionOutcome.APPLIED,
                now,
                now + seconds,
                cost_seconds=seconds,
                cost_joules=self._mean_delta_watts() * seconds,
                cost_bytes=flush_bytes,
                reason="battery-failed" if controller.battery_failed else "",
            )
        flushed_before = wd.flushed_pages
        completion = controller.select_write_delay(now, set(action.item_ids))
        flush_bytes = (wd.flushed_pages - flushed_before) * PAGE_BYTES
        return ActionRecord(
            action,
            ActionOutcome.APPLIED,
            now,
            completion,
            cost_seconds=completion - now,
            cost_joules=self._mean_delta_watts()
            * self._bulk_seconds(flush_bytes),
            cost_bytes=flush_bytes,
            reason="battery-failed" if controller.battery_failed else "",
        )

    def _apply_flush_item(
        self, now: float, action: FlushItem, dry_run: bool
    ) -> ActionRecord:
        controller = self.controller
        wd = controller.cache.write_delay
        dirty = wd.dirty_bytes_of(action.item_id)
        if dry_run:
            seconds = self._bulk_seconds(dirty)
            return ActionRecord(
                action,
                ActionOutcome.APPLIED,
                now,
                now + seconds,
                cost_seconds=seconds,
                cost_joules=self._mean_delta_watts() * seconds,
                cost_bytes=dirty,
                reason="" if dirty else "no-dirty-data",
            )
        completion = controller.flush_item(now, action.item_id)
        return ActionRecord(
            action,
            ActionOutcome.APPLIED,
            now,
            completion,
            cost_seconds=completion - now,
            cost_joules=self._mean_delta_watts() * self._bulk_seconds(dirty),
            cost_bytes=dirty,
            reason="" if dirty else "no-dirty-data",
        )

    def _apply_flush_all(
        self, now: float, action: FlushWriteDelay, dry_run: bool
    ) -> ActionRecord:
        controller = self.controller
        wd = controller.cache.write_delay
        if dry_run:
            dirty = wd.dirty_pages * PAGE_BYTES
            seconds = self._bulk_seconds(dirty)
            return ActionRecord(
                action,
                ActionOutcome.APPLIED,
                now,
                now + seconds,
                cost_seconds=seconds,
                cost_joules=self._mean_delta_watts() * seconds,
                cost_bytes=dirty,
            )
        flushed_before = wd.flushed_pages
        completion = controller.flush_write_delay(now)
        flush_bytes = (wd.flushed_pages - flushed_before) * PAGE_BYTES
        return ActionRecord(
            action,
            ActionOutcome.APPLIED,
            now,
            completion,
            cost_seconds=completion - now,
            cost_joules=self._mean_delta_watts()
            * self._bulk_seconds(flush_bytes),
            cost_bytes=flush_bytes,
        )

    def _apply_power_off(
        self, now: float, action: SetPowerOffEnabled, dry_run: bool
    ) -> ActionRecord:
        enclosure = self.controller.virtualization.enclosure(action.enclosure)
        if not action.enabled:
            if not dry_run:
                enclosure.disable_power_off(now)
            return ActionRecord(action, ActionOutcome.APPLIED, now, now)
        veto_reason = self._gate_veto(enclosure, now, dry_run)
        if veto_reason is not None:
            if not dry_run:
                enclosure.disable_power_off(now)
            return ActionRecord(
                action,
                ActionOutcome.VETOED_BY_DEGRADED_MODE,
                now,
                now,
                reason=veto_reason,
            )
        if not dry_run:
            enclosure.enable_power_off(now)
        return ActionRecord(action, ActionOutcome.APPLIED, now, now)

    def _gate_veto(
        self, enclosure: DiskEnclosure, now: float, dry_run: bool
    ) -> str | None:
        """Degraded-mode gate: veto reason for enabling power-off, or None.

        When an enclosure's recent spin-up failures (within
        ``config.spin_up_failure_window``) reach
        ``config.spin_up_failure_threshold``, the enclosure enters a
        cool-down of ``config.power_off_cooldown`` seconds during which
        enablement is vetoed — a drive that keeps failing to spin up
        should not keep being spun down.  Without fault injection there
        are no recorded failures and the gate is a transparent
        pass-through.  Dry runs evaluate the decision without arming a
        new cool-down.
        """
        until = self._cooldown_until.get(enclosure.name, 0.0)
        if now < until:
            return "cooldown"
        failures = enclosure.spin_up_failure_times
        if failures:
            if self.config is None:
                raise UsageError(
                    "degraded-mode gate needs an executor config to judge "
                    f"spin-up failures on {enclosure.name!r}"
                )
            window_start = now - self.config.spin_up_failure_window
            recent = sum(1 for t in failures if t >= window_start)
            if recent >= self.config.spin_up_failure_threshold:
                if not dry_run:
                    self._cooldown_until[enclosure.name] = (
                        now + self.config.power_off_cooldown
                    )
                    self.degraded_cooldowns += 1
                return "degraded-mode"
        return None

    def _apply_block_charge(
        self, now: float, action: ChargeBlockMigration, dry_run: bool
    ) -> ActionRecord:
        controller = self.controller
        if action.size_bytes <= 0:
            return ActionRecord(
                action,
                ActionOutcome.REJECTED,
                now,
                now,
                reason="non-positive-size",
            )
        virt = controller.virtualization
        seconds = self._bulk_seconds(action.size_bytes)
        joules = (
            self._delta_watts(virt.enclosure(action.source_enclosure))
            + self._delta_watts(virt.enclosure(action.target_enclosure))
        ) * seconds
        if dry_run:
            return ActionRecord(
                action,
                ActionOutcome.APPLIED,
                now,
                now + seconds,
                cost_seconds=seconds,
                cost_joules=joules,
                cost_bytes=action.size_bytes,
            )
        completion = controller.charge_block_migration(
            now,
            action.item_id,
            action.size_bytes,
            action.source_enclosure,
            action.target_enclosure,
        )
        return ActionRecord(
            action,
            ActionOutcome.APPLIED,
            now,
            completion,
            cost_seconds=completion - now,
            cost_joules=joules,
            cost_bytes=action.size_bytes,
        )
