"""Typed storage-management actions and their execution records.

Every mutation a power policy may request of the storage layer —
migrate, preload, unpin, write-delay (re)selection, flush, power-off
enablement, DDR's block-copy charge — is one frozen :class:`Action`
dataclass here.  Policies *plan* (build :class:`~repro.actions.plan.ActionPlan`
values out of these); only the
:class:`~repro.actions.executor.ActionExecutor` applies them, and each
application yields one :class:`ActionRecord`: the action, its
:class:`ActionOutcome`, when it started and completed, and its cost in
seconds, joules, and bytes.

Records are JSON-round-trippable (:meth:`ActionRecord.to_dict` /
:meth:`ActionRecord.from_dict`): the action log travels on
:class:`~repro.trace.replay.ReplayResult` through
:mod:`repro.experiments.serialize` and the parallel result cache, so
every field is plain ints/floats/strings/tuples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.errors import ValidationError
from repro.units import Bytes, Joules, Seconds

__all__ = [
    "Action",
    "ActionOutcome",
    "ActionRecord",
    "ArchiveItem",
    "ChargeBlockMigration",
    "DemoteItem",
    "EnableWriteDelay",
    "FlushItem",
    "FlushWriteDelay",
    "MigrateItem",
    "PreloadItem",
    "PromoteItem",
    "ReplicateItem",
    "SetPowerOffEnabled",
    "UnpinItem",
    "action_from_dict",
]


class ActionOutcome(enum.Enum):
    """What happened when the executor applied an action.

    ``APPLIED``
        The mutation happened (possibly as a documented no-op, e.g.
        preloading an already-pinned item; the record's ``reason`` says
        so).
    ``ABORTED_BY_FAULT``
        Fault injection cancelled the action mid-application
        (:class:`~repro.errors.MigrationAbortedError`); all books were
        rolled back untouched.
    ``VETOED_BY_DEGRADED_MODE``
        The degraded-mode gate refused a power-off enablement because
        the enclosure's recent spin-up failures put it in a cool-down
        window (the enclosure stays powered instead).
    ``REJECTED``
        The action could not be applied at all (unknown item, item
        already at its target, insufficient capacity); nothing was
        mutated.
    """

    APPLIED = "applied"
    ABORTED_BY_FAULT = "aborted-by-fault"
    VETOED_BY_DEGRADED_MODE = "vetoed-by-degraded-mode"
    REJECTED = "rejected"


@dataclass(frozen=True)
class Action:
    """Base class for all storage-management actions.

    Subclasses set :attr:`kind` (the stable serialization tag) and add
    their payload fields.  Actions are immutable value objects; they
    carry *what* should happen, never *when* — time is supplied by the
    executor at application.
    """

    #: Stable serialization tag; one per concrete subclass.
    kind = "abstract"

    def to_dict(self) -> dict[str, Any]:
        """Flatten this action to plain JSON types, tagged with ``kind``."""
        data: dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = list(value) if isinstance(value, tuple) else value
        return data


@dataclass(frozen=True)
class MigrateItem(Action):
    """Move one data item to another enclosure (paper §V-A)."""

    item_id: str
    target_enclosure: str
    #: Evacuation moves (Algorithm 3) execute before consolidation moves.
    evacuation: bool = False

    kind = "migrate-item"


@dataclass(frozen=True)
class PreloadItem(Action):
    """Pin one whole data item into the preload partition (§V-C)."""

    item_id: str

    kind = "preload-item"


@dataclass(frozen=True)
class UnpinItem(Action):
    """Evict one data item from the preload partition (§V-C)."""

    item_id: str

    kind = "unpin-item"


@dataclass(frozen=True)
class EnableWriteDelay(Action):
    """Reconfigure the write-delay selection to exactly these items (§V-B).

    Items are stored sorted so plans built from set iteration serialize
    identically in every process (controller semantics are set-based,
    so the order never affects the simulation itself).
    """

    item_ids: tuple[str, ...]

    kind = "enable-write-delay"

    def __post_init__(self) -> None:
        object.__setattr__(self, "item_ids", tuple(sorted(self.item_ids)))


@dataclass(frozen=True)
class FlushItem(Action):
    """Write one item's dirty pages out; it stays write-delay selected."""

    item_id: str

    kind = "flush-item"


@dataclass(frozen=True)
class FlushWriteDelay(Action):
    """Bulk-flush every dirty page in the write-delay partition (§V-B)."""

    kind = "flush-write-delay"


@dataclass(frozen=True)
class SetPowerOffEnabled(Action):
    """Enable or disable the power-off function of one enclosure (§IV-G).

    Enablement passes through the executor's degraded-mode gate; an
    enclosure whose spin-ups keep failing gets
    :attr:`ActionOutcome.VETOED_BY_DEGRADED_MODE` and stays powered.
    """

    enclosure: str
    enabled: bool

    kind = "set-power-off-enabled"


@dataclass(frozen=True)
class ChargeBlockMigration(Action):
    """Charge a block-grained copy between enclosures (DDR's move).

    No remapping happens — the caller's block-level placement sits below
    the item-grained virtualization — but I/O, energy, and migrated-byte
    accounting are identical to a real move.
    """

    item_id: str
    size_bytes: Bytes
    source_enclosure: str
    target_enclosure: str

    kind = "charge-block-migration"


@dataclass(frozen=True)
class PromoteItem(Action):
    """Move one data item *up* to a faster tier (archive/HDD → flash/HDD).

    The executor resolves the concrete target device inside
    ``target_tier`` deterministically (most free bytes, ties broken by
    name) and rejects moves that are not actually promotions — the
    target tier must rank strictly faster than the item's current tier.
    """

    item_id: str
    target_tier: str

    kind = "promote-item"


@dataclass(frozen=True)
class DemoteItem(Action):
    """Move one data item *down* to a slower tier (flash → HDD → archive)."""

    item_id: str
    target_tier: str

    kind = "demote-item"


@dataclass(frozen=True)
class ArchiveItem(Action):
    """Move one data item onto the archive tier (coldest placement).

    The target tier is implicit — the executor resolves the configured
    archive tier and rejects the action when none exists.
    """

    item_id: str

    kind = "archive-item"


@dataclass(frozen=True)
class ReplicateItem(Action):
    """Copy one data item to another tier as a redundancy replica.

    The primary placement is untouched; the replica occupies capacity
    (and cost) on the target tier and the copy I/O is charged like a
    migration, including its fault-abort draws.
    """

    item_id: str
    target_tier: str

    kind = "replicate-item"


#: Registry of concrete action classes by serialization tag.
_ACTION_KINDS: dict[str, type[Action]] = {
    cls.kind: cls
    for cls in (
        MigrateItem,
        PreloadItem,
        UnpinItem,
        EnableWriteDelay,
        FlushItem,
        FlushWriteDelay,
        SetPowerOffEnabled,
        ChargeBlockMigration,
        PromoteItem,
        DemoteItem,
        ArchiveItem,
        ReplicateItem,
    )
}


def action_from_dict(data: Mapping[str, Any]) -> Action:
    """Rebuild an action from :meth:`Action.to_dict` output."""
    kind = data.get("kind")
    cls = _ACTION_KINDS.get(str(kind))
    if cls is None:
        raise ValidationError(f"unknown action kind {kind!r}")
    kwargs: dict[str, Any] = {}
    for spec in fields(cls):
        if spec.name not in data:
            raise ValidationError(
                f"action {kind!r} payload is missing field {spec.name!r}"
            )
        value = data[spec.name]
        kwargs[spec.name] = tuple(value) if isinstance(value, list) else value
    return cls(**kwargs)


@dataclass(frozen=True)
class ActionRecord:
    """One action's application, as logged by the executor.

    ``time`` is when the action started (for chained migrations this is
    the previous migration's completion, not the plan's submission
    time); ``completion`` is when its I/O finished.  ``cost_seconds`` is
    ``completion - time``; ``cost_joules`` is the analytic transfer
    energy estimate (incremental active-over-idle power × platter time
    on every enclosure touched) — an *estimate*, because the true
    marginal energy depends on what else overlaps the transfer;
    ``cost_bytes`` counts payload bytes actually moved/flushed/pinned.
    """

    action: Action
    outcome: ActionOutcome
    time: Seconds
    completion: Seconds
    cost_seconds: Seconds = 0.0
    cost_joules: Joules = 0.0
    cost_bytes: Bytes = 0
    #: Short machine-readable qualifier ("capacity", "cooldown", ...).
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Flatten this record to plain JSON types."""
        return {
            "action": self.action.to_dict(),
            "outcome": self.outcome.value,
            "time": self.time,
            "completion": self.completion,
            "cost_seconds": self.cost_seconds,
            "cost_joules": self.cost_joules,
            "cost_bytes": self.cost_bytes,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ActionRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            action=action_from_dict(data["action"]),
            outcome=ActionOutcome(data["outcome"]),
            time=data["time"],
            completion=data["completion"],
            cost_seconds=data["cost_seconds"],
            cost_joules=data["cost_joules"],
            cost_bytes=data["cost_bytes"],
            reason=data["reason"],
        )
