"""Ordered plans of storage-management actions.

An :class:`ActionPlan` is what a policy's planning pass produces: the
ordered list of :class:`~repro.actions.records.Action` values one
management decision wants applied.  Order is execution order — the
:class:`~repro.actions.executor.ActionExecutor` applies the plan front
to back, chaining consecutive migrations in time exactly like the
serialized one-at-a-time migration the paper describes (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.actions.records import Action

__all__ = ["ActionPlan"]


@dataclass
class ActionPlan:
    """An ordered sequence of actions produced by one planning pass."""

    actions: list[Action] = field(default_factory=list)

    def add(self, action: Action) -> None:
        """Append one action to the plan."""
        self.actions.append(action)

    def extend(self, actions: Iterable[Action]) -> None:
        """Append several actions, preserving their order."""
        self.actions.extend(actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __bool__(self) -> bool:
        return bool(self.actions)
