"""Typed action/command layer between power policies and storage.

The paper's management mechanisms — data placement (§IV-D), write delay
(§IV-E), preload (§IV-F), power-off enablement (§IV-G) — become typed,
frozen :class:`~repro.actions.records.Action` values here.  Policies
*plan* (:class:`~repro.actions.plan.ActionPlan`); the
:class:`~repro.actions.executor.ActionExecutor` *applies*, emitting an
auditable, replayable, JSON-round-trippable
:class:`~repro.actions.records.ActionRecord` per action.  See
``docs/actions.md`` for the taxonomy, outcome semantics, and the
dry-run contract.
"""

from repro.actions.executor import ActionExecutor, ApplyReport
from repro.actions.plan import ActionPlan
from repro.actions.records import (
    Action,
    ActionOutcome,
    ActionRecord,
    ChargeBlockMigration,
    EnableWriteDelay,
    FlushItem,
    FlushWriteDelay,
    MigrateItem,
    PreloadItem,
    SetPowerOffEnabled,
    UnpinItem,
    action_from_dict,
)

__all__ = [
    "Action",
    "ActionExecutor",
    "ActionOutcome",
    "ActionPlan",
    "ActionRecord",
    "ApplyReport",
    "ChargeBlockMigration",
    "EnableWriteDelay",
    "FlushItem",
    "FlushWriteDelay",
    "MigrateItem",
    "PreloadItem",
    "SetPowerOffEnabled",
    "UnpinItem",
    "action_from_dict",
]
