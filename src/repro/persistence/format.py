"""The ``.ecsn`` snapshot envelope: versioned, checksummed, torn-write safe.

A snapshot file is one fixed header followed by one pickled payload::

    offset  size  field
    0       4     magic ``b"ECSN"``
    4       4     format version (u32, little-endian) — currently 1
    8       8     payload length in bytes (u64, little-endian)
    16      4     CRC-32 of the payload bytes (u32, little-endian)
    20      len   payload: ``pickle.dumps({"meta": ..., "states": ...})``

The layout mirrors the ``.ecot`` trace header (magic + version + CRC):
every field the loader trusts is verified before a single byte of state
is interpreted.  :func:`write_snapshot` is atomic against crashes —
the bytes go to a temporary file in the destination directory, are
fsync'd, and only then renamed over the final name — so a reader never
observes a half-written ``snap-*.ecsn``; a crash mid-write leaves at
worst a stray ``*.tmp`` the loader ignores.

:func:`load_snapshot` *refuses* anything that does not verify — short
header, wrong magic, unknown version, truncated or oversized payload,
CRC mismatch, undecodable pickle — by raising
:class:`~repro.errors.SnapshotError`.  No state is ever partially
restored from a bad file; :func:`find_latest_valid` embodies the
recovery policy of skipping back to the newest snapshot that fully
verifies.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import SnapshotError

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SNAPSHOT_SUFFIX",
    "Snapshottable",
    "find_latest_valid",
    "load_snapshot",
    "snapshot_filename",
    "snapshot_count",
    "write_snapshot",
]

#: First four bytes of every snapshot file.
MAGIC = b"ECSN"

#: Envelope version written by :func:`write_snapshot`.
FORMAT_VERSION = 1

#: File-name suffix of snapshot files.
SNAPSHOT_SUFFIX = ".ecsn"

_HEADER = struct.Struct("<4sIQI")


@runtime_checkable
class Snapshottable(Protocol):
    """Anything whose mutable simulation state can be captured/restored.

    Every stateful component the kernel drives (controller, enclosures,
    caches, monitors, policies, fault clock, executor, the kernel
    itself) implements this pair:

    * :meth:`snapshot_state` returns a picklable ``dict`` of the
      component's *mutable* state — strictly read-only, no settlement,
      no meter reads, no derived caches;
    * :meth:`restore_state` rebuilds exactly that state onto a freshly
      constructed component (construction wiring — power models,
      capacities, taps, fault-clock references — comes from the normal
      build path, never from the snapshot).

    The devtools analyzer's D205 check flags kernel-registered stateful
    classes that do not satisfy this protocol.
    """

    def snapshot_state(self) -> dict:
        """Return this component's mutable state as a picklable dict."""
        ...

    def restore_state(self, state: dict) -> None:
        """Rebuild exactly the state :meth:`snapshot_state` captured."""
        ...


def snapshot_filename(count: int) -> str:
    """Canonical file name for the snapshot taken after record ``count``.

    Zero-padded so lexicographic order equals record order — the
    recovery scan sorts names, newest last.
    """
    return f"snap-{count:010d}{SNAPSHOT_SUFFIX}"


def snapshot_count(path: str | os.PathLike) -> int:
    """Record count encoded in a :func:`snapshot_filename`-style name."""
    name = Path(path).name
    if not (name.startswith("snap-") and name.endswith(SNAPSHOT_SUFFIX)):
        raise SnapshotError(f"not a snapshot file name: {name!r}")
    digits = name[len("snap-"):-len(SNAPSHOT_SUFFIX)]
    if not digits.isdigit():
        raise SnapshotError(f"not a snapshot file name: {name!r}")
    return int(digits)


def write_snapshot(path: str | os.PathLike, payload: dict) -> Path:
    """Atomically write ``payload`` as a snapshot file at ``path``.

    The payload is pickled, wrapped in the checksummed envelope, written
    to a temporary sibling, fsync'd, and renamed into place — the
    same temp-file + fsync + ``os.replace`` discipline a write-ahead log
    uses, so a crash at any instant leaves either the previous file (or
    nothing) or the complete new file, never a torn one.
    """
    path = Path(path)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, len(blob), zlib.crc32(blob) & 0xFFFFFFFF
    )
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    # Cleanup must cover KeyboardInterrupt too — a stray tmp file on ^C
    # would otherwise accumulate; the exception is always re-raised.
    except BaseException:  # lint: ignore[R7]
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Durability of the rename itself: fsync the directory when the
    # platform allows opening one (best-effort elsewhere).
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path


def load_snapshot(path: str | os.PathLike) -> dict:
    """Read and fully verify one snapshot file.

    Returns the ``{"meta": ..., "states": ...}`` payload.  Raises
    :class:`~repro.errors.SnapshotError` for *every* way the file can be
    unusable — unreadable, header too short, wrong magic, unsupported
    version, truncated or over-long payload, checksum mismatch, payload
    that does not unpickle, or a payload of the wrong shape.  A file
    that loads is bytewise intact end to end.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if len(data) < _HEADER.size:
        raise SnapshotError(
            f"snapshot {path} is truncated: {len(data)} bytes is shorter "
            f"than the {_HEADER.size}-byte header"
        )
    magic, version, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise SnapshotError(
            f"snapshot {path} has bad magic {magic!r} (expected {MAGIC!r})"
        )
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has unsupported format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    blob = data[_HEADER.size:]
    if len(blob) != length:
        raise SnapshotError(
            f"snapshot {path} payload is {len(blob)} bytes but the header "
            f"declares {length}: truncated or corrupt"
        )
    if zlib.crc32(blob) & 0xFFFFFFFF != crc:
        raise SnapshotError(
            f"snapshot {path} failed its CRC-32 check: payload corrupt"
        )
    # A corrupt-but-CRC-matching blob can raise nearly anything from
    # inside pickle (UnpicklingError, EOFError, AttributeError, ...).
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # lint: ignore[R7]
        raise SnapshotError(
            f"snapshot {path} payload does not decode: {exc}"
        ) from exc
    if (
        not isinstance(payload, dict)
        or "meta" not in payload
        or "states" not in payload
    ):
        raise SnapshotError(
            f"snapshot {path} payload is not a meta/states document"
        )
    return payload


def find_latest_valid(directory: str | os.PathLike) -> Path | None:
    """Newest snapshot in ``directory`` that fully verifies, or ``None``.

    Scans ``snap-*.ecsn`` names newest-first and skips (does not delete)
    any file :func:`load_snapshot` refuses — this is the crash-recovery
    entry point: a torn or corrupt newest snapshot falls back to the
    one before it.
    """
    candidates = sorted(
        Path(directory).glob(f"snap-*{SNAPSHOT_SUFFIX}"), reverse=True
    )
    for candidate in candidates:
        try:
            load_snapshot(candidate)
        except SnapshotError:
            continue
        return candidate
    return None
