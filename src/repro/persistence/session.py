"""Snapshot sessions: run a replay durably, resume it bit-identically.

A :class:`SnapshotSession` owns one (workload, policy) replay the way
:class:`~repro.trace.replay.TraceReplayer` does, but with a durability
surface on top:

* :meth:`SnapshotSession.run` replays the trace and, every N record
  boundaries, captures the *entire* mutable simulation state — kernel
  clock and event queue, controller books, enclosure power state and
  energy meters, cache partitions, both monitors, the power timeline,
  the policy's planner state, fault-clock draw cursors, the degraded
  -mode gate, and the full typed action log — into one atomic
  ``.ecsn`` file (:mod:`repro.persistence.format`).
* :meth:`SnapshotSession.resume` restores such a snapshot into a
  freshly built session and pumps the remaining records through
  :meth:`~repro.engine.kernel.SimulationKernel.resume_replay`.  The
  replay prologue is *not* re-run (the restored state already reflects
  it) and the epilogue is identical, so the final
  :class:`~repro.trace.replay.ReplayResult` — energy books,
  availability report, timeline samples, action log — is bit-identical
  to the uninterrupted run.  The crash harness
  (:mod:`repro.persistence.harness`) proves this at seeded random kill
  points.

Construction wiring is deliberately rebuilt, never restored: a resumed
session goes through the normal :func:`~repro.simulation.build_context`
/ ``workload.install`` path first, then overwrites every component's
mutable state.  Snapshots therefore stay small and survive refactors of
anything that is not state.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.config import DEFAULT_CONFIG
from repro.engine.kernel import ReplayOutcome, SimulationKernel
from repro.errors import SnapshotError, ValidationError
from repro.faults.plan import FaultPlan
from repro.faults.report import availability_from_context
from repro.monitoring.timeline import PowerTimeline
from repro.persistence.format import snapshot_filename, write_snapshot
from repro.trace.replay import ReplayResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.audit import InvariantAuditor
    from repro.simulation import SimulationContext

__all__ = ["RunSpec", "SnapshotSession"]

#: ``hook(count, ts)`` observer fired at record boundaries.
RecordHook = Callable[[int, float], None]


@dataclass(frozen=True)
class RunSpec:
    """Plain-data description of one snapshot-capable replay.

    A spec is everything needed to rebuild the session deterministically
    — it travels inside every snapshot's ``meta`` so ``ecostor resume``
    can reconstruct the exact run a snapshot came from, and so a
    snapshot taken for one run can never be restored into a different
    one (the loader compares specs and refuses mismatches).

    The fault plan is carried as its canonical JSON
    (:meth:`~repro.faults.plan.FaultPlan.to_json`) to keep the spec
    plain JSON-typed data.
    """

    workload: str
    policy: str
    full: bool = False
    seed: int = 0
    audit: bool = False
    columnar: bool = False
    timeline_interval: float | None = None
    faults_json: str | None = None
    #: Fleet coordinates (:mod:`repro.fleet`): this session replays
    #: array ``array_index`` of an ``n_arrays``-wide fleet routed with
    #: ``router_seed``.  The defaults (``1``/``0``/``0``) describe a
    #: standalone single-array run and keep the spec — and any snapshot
    #: carrying it — bit-compatible with pre-fleet sessions.
    n_arrays: int = 1
    array_index: int = 0
    router_seed: int = 0

    def __post_init__(self) -> None:
        from repro.experiments.runner import ALL_POLICIES
        from repro.experiments.testbed import WORKLOAD_NAMES

        if self.workload not in WORKLOAD_NAMES:
            raise ValidationError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {WORKLOAD_NAMES}"
            )
        if self.policy not in ALL_POLICIES:
            raise ValidationError(
                f"unknown policy {self.policy!r}; "
                f"expected one of {tuple(ALL_POLICIES)}"
            )
        if self.timeline_interval is not None and self.timeline_interval <= 0:
            raise ValidationError("timeline_interval must be positive")
        if self.n_arrays < 1:
            raise ValidationError("n_arrays must be at least 1")
        if not 0 <= self.array_index < self.n_arrays:
            raise ValidationError(
                f"array_index {self.array_index} outside fleet of "
                f"{self.n_arrays}"
            )

    def fault_plan(self) -> FaultPlan | None:
        """The spec's fault plan, decoded; ``None`` without faults."""
        if self.faults_json is None:
            return None
        return FaultPlan.from_json(self.faults_json)

    def to_dict(self) -> dict:
        """Plain-JSON-types view; round-trips through :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec serialized by :meth:`to_dict`."""
        return cls(**data)


class SnapshotSession:
    """One snapshot-capable replay, built from a :class:`RunSpec`."""

    def __init__(self, spec: RunSpec) -> None:
        from repro.experiments.runner import ALL_POLICIES, TIERED_POLICIES
        from repro.experiments.testbed import build_workload
        from repro.simulation import build_context, build_tiered_context

        self.spec = spec
        self.workload = build_workload(spec.workload, spec.full, spec.seed)
        array_id: str | None = None
        if spec.n_arrays > 1:
            from repro.fleet.routing import HashRouter
            from repro.fleet.split import shard_workload

            router = HashRouter(spec.n_arrays, spec.router_seed)
            self.workload = shard_workload(
                self.workload, router, spec.array_index
            )
            array_id = router.array_id(spec.array_index)
        # Tier-needing policies get the flash+HDD+archive testbed; the
        # construction wiring is rebuilt identically on resume, so the
        # tier structure itself never travels in a snapshot.
        if spec.policy in TIERED_POLICIES:
            self.context: SimulationContext = build_tiered_context(
                DEFAULT_CONFIG,
                self.workload.enclosure_count,
                faults=spec.fault_plan(),
                array_id=array_id,
            )
        else:
            self.context = build_context(
                DEFAULT_CONFIG,
                self.workload.enclosure_count,
                faults=spec.fault_plan(),
                array_id=array_id,
            )
        self.workload.install(self.context)
        self.timeline: PowerTimeline | None = None
        if spec.timeline_interval is not None:
            self.timeline = PowerTimeline(
                self.context.enclosures,
                interval_seconds=spec.timeline_interval,
            )
        self.policy = ALL_POLICIES[spec.policy]()
        self.policy.bind(self.context)
        self.auditor: InvariantAuditor | None = None
        self.kernel = SimulationKernel(
            self.context, self.policy, timeline=self.timeline
        )
        if spec.audit:
            from repro.devtools.audit import InvariantAuditor

            self.auditor = InvariantAuditor(self.context)
            self.auditor.hook(self.kernel)
        self.snapshots_written = 0

    @property
    def records(self) -> object:
        """The trace to pump: columnar or record objects, per the spec."""
        if self.spec.columnar:
            return self.workload.columnar()
        return self.workload.records

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def capture(self, count: int, ts: float) -> dict:
        """Snapshot payload at the boundary after record ``count``.

        Strictly read-only: every component's ``snapshot_state`` copies
        books without settling meters or touching derived caches, so
        taking a snapshot cannot perturb the run (the crash harness's
        bit-identity assertion would catch it if one did).
        """
        context = self.context
        states: dict[str, dict] = {
            "kernel": self.kernel.snapshot_state(),
            "controller": context.controller.snapshot_state(),
            "virtualization": context.virtualization.snapshot_state(),
            "cache": context.cache.snapshot_state(),
            "migration_engine": context.migration_engine.snapshot_state(),
            "app_monitor": context.app_monitor.snapshot_state(),
            "storage_monitor": context.storage_monitor.snapshot_state(),
            "policy": self.policy.snapshot_state(),
            "executor": context.require_executor().snapshot_state(),
        }
        for enclosure in context.enclosures:
            states[f"enclosure:{enclosure.name}"] = enclosure.snapshot_state()
        if self.timeline is not None:
            states["timeline"] = self.timeline.snapshot_state()
        if context.fault_clock is not None:
            states["fault_clock"] = context.fault_clock.snapshot_state()
        if self.auditor is not None:
            states["auditor"] = self.auditor.snapshot_state()
        return {
            "meta": {
                "spec": self.spec.to_dict(),
                "count": count,
                "ts": ts,
                "policy_name": self.policy.name,
            },
            "states": states,
        }

    # ------------------------------------------------------------------
    # run / resume
    # ------------------------------------------------------------------
    def run(
        self,
        snapshot_every: int = 0,
        snapshot_dir: str | Path | None = None,
        record_hook: RecordHook | None = None,
    ) -> ReplayResult:
        """Replay from the beginning, snapshotting every N records.

        ``snapshot_every=0`` disables snapshots (a plain replay).
        ``record_hook`` is an extra boundary observer — the crash
        harness injects its kill there, *after* any due snapshot has
        been written, exactly as a real crash would interleave.
        """
        if snapshot_every < 0:
            raise ValidationError("snapshot_every must be non-negative")
        if snapshot_every and snapshot_dir is None:
            raise ValidationError(
                "snapshot_every requires a snapshot_dir to write into"
            )
        hook: RecordHook | None = record_hook
        if snapshot_every:
            directory = Path(snapshot_dir)  # type: ignore[arg-type]
            directory.mkdir(parents=True, exist_ok=True)

            def hook(count: int, ts: float) -> None:
                if count % snapshot_every == 0:
                    write_snapshot(
                        directory / snapshot_filename(count),
                        self.capture(count, ts),
                    )
                    self.snapshots_written += 1
                if record_hook is not None:
                    record_hook(count, ts)

        if hook is not None:
            self.kernel.set_record_hook(hook)
        outcome = self.kernel.replay(
            self.records, duration=self.workload.duration
        )
        return self._assemble(outcome)

    def resume(self, payload: dict) -> ReplayResult:
        """Restore a verified snapshot payload and finish the replay.

        The payload must come from :func:`~repro.persistence.format.load_snapshot`
        (which already proved it bytewise intact) and must have been
        taken for this session's exact :class:`RunSpec` — anything else
        raises :class:`~repro.errors.SnapshotError` before a single
        component is touched.
        """
        meta = payload["meta"]
        # Normalize through RunSpec so snapshots written before a field
        # existed (e.g. the fleet coordinates) compare by their default
        # values instead of by key absence.
        snapshot_spec = meta.get("spec")
        if isinstance(snapshot_spec, dict):
            try:
                snapshot_spec = RunSpec.from_dict(snapshot_spec).to_dict()
            except (TypeError, ValidationError):
                pass  # unparseable spec: compare (and refuse) raw
        if snapshot_spec != self.spec.to_dict():
            raise SnapshotError(
                "snapshot was taken for a different run: "
                f"snapshot spec {meta.get('spec')!r} != session spec "
                f"{self.spec.to_dict()!r}"
            )
        states = payload["states"]
        context = self.context
        self.kernel.restore_state(self._state(states, "kernel"))
        context.controller.restore_state(self._state(states, "controller"))
        context.virtualization.restore_state(
            self._state(states, "virtualization")
        )
        context.cache.restore_state(self._state(states, "cache"))
        context.migration_engine.restore_state(
            self._state(states, "migration_engine")
        )
        context.app_monitor.restore_state(self._state(states, "app_monitor"))
        context.storage_monitor.restore_state(
            self._state(states, "storage_monitor")
        )
        self.policy.restore_state(self._state(states, "policy"))
        context.require_executor().restore_state(
            self._state(states, "executor")
        )
        for enclosure in context.enclosures:
            enclosure.restore_state(
                self._state(states, f"enclosure:{enclosure.name}")
            )
        if self.timeline is not None:
            self.timeline.restore_state(self._state(states, "timeline"))
        if context.fault_clock is not None:
            context.fault_clock.restore_state(
                self._state(states, "fault_clock")
            )
        if self.auditor is not None:
            self.auditor.restore_state(self._state(states, "auditor"))
        outcome = self.kernel.resume_replay(
            self.records,
            self.workload.duration,
            meta["count"],
            meta["ts"],
        )
        return self._assemble(outcome)

    @staticmethod
    def _state(states: dict, key: str) -> dict:
        if key not in states:
            raise SnapshotError(
                f"snapshot is missing component state {key!r}"
            )
        return states[key]

    # ------------------------------------------------------------------
    # result assembly — must stay in lockstep with TraceReplayer.run
    # ------------------------------------------------------------------
    def _assemble(self, outcome: ReplayOutcome) -> ReplayResult:
        """Package the context's monitors into a :class:`ReplayResult`.

        Field-for-field the tail of
        :meth:`repro.trace.replay.TraceReplayer.run` — the crash
        harness compares these results to ones produced by the replayer
        path, so the two assemblies must not drift.
        """
        context = self.context
        policy = self.policy
        final = outcome.final
        controller = context.controller
        power = context.meter.read(final, controller)
        availability = availability_from_context(context, policy, final)
        result = ReplayResult(
            policy_name=policy.name,
            duration_seconds=final,
            io_count=outcome.io_count,
            response=context.app_monitor.response_stats(),
            power=power,
            migrated_bytes=controller.migrated_bytes,
            migration_count=controller.migration_count,
            determinations=policy.determinations,
            cache_hit_ratio=controller.cache_hit_ratio,
            spin_up_count=sum(e.spin_up_count for e in context.enclosures),
            spin_down_count=sum(e.spin_down_count for e in context.enclosures),
            availability=availability,
        )
        if context.executor is not None:
            object.__setattr__(
                result, "actions", tuple(context.executor.log)
            )
        return result
