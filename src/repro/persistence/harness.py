"""Crash-injection harness: prove resume bit-identity the hard way.

The durability claim of :mod:`repro.persistence` is behavioural, not
structural: *killing the replay at any record boundary and resuming
from the latest valid snapshot yields the same final result, bit for
bit, as never crashing at all*.  This module turns that claim into a
repeatable drill:

1. run the uninterrupted **golden** replay once and keep its full
   comparison surface — the :class:`~repro.trace.replay.ReplayResult`
   (flattened via ``dataclasses.asdict``), the typed action log, and
   every power-timeline point;
2. for each seeded random kill point, run again with snapshots on and
   an injected crash (an exception raised from the kernel's record
   hook, after the boundary's snapshot — exactly where a power loss
   would land), then build a *fresh* session, restore the newest valid
   snapshot, resume, and compare against the golden surface;
3. run the **torn-write drill**: truncate the newest snapshot file the
   way an interrupted write would, assert the loader refuses it with
   :class:`~repro.errors.SnapshotError`, and prove recovery falls back
   to the previous snapshot and *still* reaches the golden result.

The sweep result is a :class:`RecoveryReport` that renders as text for
humans and serializes to JSON for the CI artifact.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import SnapshotError, ValidationError
from repro.persistence.format import (
    find_latest_valid,
    load_snapshot,
    snapshot_count,
)
from repro.persistence.session import RunSpec, SnapshotSession
from repro.trace.replay import ReplayResult

__all__ = ["CrashTrial", "RecoveryReport", "run_crash_sweep"]


class _InjectedCrash(Exception):
    """Raised from the record hook to simulate a mid-replay kill."""


@dataclass(frozen=True)
class CrashTrial:
    """One kill/resume cycle of the sweep."""

    #: Record boundary the crash was injected at.
    kill_at: int
    #: Boundary of the snapshot recovery restarted from (0 = no usable
    #: snapshot existed yet, so recovery replayed from the beginning).
    resumed_from: int
    #: Whether the recovered result matched the golden run bit for bit.
    identical: bool


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one crash-injection sweep over one run spec."""

    spec: dict
    snapshot_every: int
    seed: int
    io_count: int
    trials: tuple[CrashTrial, ...]
    #: The torn-write drill: was the truncated snapshot refused?
    torn_write_refused: bool = False
    #: ... and did resume from the fallback snapshot match the golden?
    torn_write_recovered: bool = False
    #: Boundary the torn-write drill fell back to (-1 = drill skipped:
    #: fewer than two snapshots were written).
    torn_write_fallback: int = field(default=-1)

    @property
    def ok(self) -> bool:
        """True when every trial and the torn-write drill held."""
        trials_ok = all(trial.identical for trial in self.trials)
        if self.torn_write_fallback < 0:
            return trials_ok
        return trials_ok and self.torn_write_refused and (
            self.torn_write_recovered
        )

    def to_json(self) -> str:
        """JSON document for the CI recovery-report artifact."""
        return json.dumps(asdict(self), indent=1, sort_keys=True)

    def render(self) -> str:
        """Human-readable sweep summary."""
        lines = [
            f"crash sweep: {self.spec['workload']} / {self.spec['policy']}"
            f" — {len(self.trials)} kill points over {self.io_count} records"
            f" (snapshot every {self.snapshot_every}, seed {self.seed})"
        ]
        for trial in self.trials:
            verdict = "bit-identical" if trial.identical else "DIVERGED"
            lines.append(
                f"  kill@{trial.kill_at:>8} -> resume@"
                f"{trial.resumed_from:>8}: {verdict}"
            )
        if self.torn_write_fallback >= 0:
            refused = "refused" if self.torn_write_refused else "ACCEPTED"
            recovered = (
                "bit-identical" if self.torn_write_recovered else "DIVERGED"
            )
            lines.append(
                f"  torn write: truncated newest snapshot {refused}, "
                f"fallback to @{self.torn_write_fallback}: {recovered}"
            )
        lines.append("result: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _comparable(result: ReplayResult, session: SnapshotSession) -> tuple:
    """Everything the bit-identity assertion covers, as plain data."""
    timeline = None
    if session.timeline is not None:
        timeline = tuple(
            (point.timestamp, point.total_watts, tuple(
                sorted(point.per_enclosure.items())
            ))
            for point in session.timeline.points
        )
    return (asdict(result), result.actions, timeline)


def _crash_and_resume(
    spec: RunSpec, snapshot_every: int, kill_at: int, directory: Path
) -> tuple[tuple, int]:
    """Kill one run at ``kill_at``, recover, and return the comparison
    surface plus the boundary recovery resumed from."""

    def injector(count: int, ts: float) -> None:
        if count == kill_at:
            raise _InjectedCrash(count)

    session = SnapshotSession(spec)
    try:
        result = session.run(snapshot_every, directory, record_hook=injector)
    except _InjectedCrash:
        pass
    else:
        # The kill point lay beyond the trace; nothing crashed.
        return _comparable(result, session), 0
    latest = find_latest_valid(directory)
    recovered = SnapshotSession(spec)
    if latest is None:
        # Crashed before the first snapshot landed: recovery is a plain
        # replay from the beginning.
        return _comparable(recovered.run(), recovered), 0
    result = recovered.resume(load_snapshot(latest))
    return _comparable(result, recovered), snapshot_count(latest)


def _torn_write_drill(
    spec: RunSpec,
    snapshot_every: int,
    directory: Path,
    golden: tuple,
) -> tuple[bool, bool, int]:
    """Truncate the newest snapshot; prove refusal + fallback recovery.

    Returns ``(refused, recovered, fallback_count)``; a fallback count
    of -1 means the run wrote fewer than two snapshots and the drill
    could not execute.
    """
    SnapshotSession(spec).run(snapshot_every, directory)
    snapshots = sorted(directory.glob("snap-*.ecsn"))
    if len(snapshots) < 2:
        return (False, False, -1)
    newest = snapshots[-1]
    torn = newest.read_bytes()[:-7]
    newest.write_bytes(torn)
    try:
        load_snapshot(newest)
    except SnapshotError:
        refused = True
    else:
        refused = False
    fallback = find_latest_valid(directory)
    if fallback is None or fallback == newest:
        return (refused, False, -1)
    session = SnapshotSession(spec)
    result = session.resume(load_snapshot(fallback))
    recovered = _comparable(result, session) == golden
    return (refused, recovered, snapshot_count(fallback))


def run_crash_sweep(
    spec: RunSpec,
    snapshot_every: int = 500,
    trials: int = 3,
    seed: int = 11,
    workdir: str | Path | None = None,
) -> RecoveryReport:
    """Seeded kill/resume sweep over one run spec.

    ``trials`` kill points are drawn uniformly from the record range by
    ``random.Random(seed)`` — reproducible across machines.  Snapshot
    files go under ``workdir`` (one subdirectory per trial; a temporary
    directory is used and removed when ``workdir`` is ``None``).
    """
    if snapshot_every <= 0:
        raise ValidationError("snapshot_every must be positive")
    if trials <= 0:
        raise ValidationError("trials must be positive")
    golden_session = SnapshotSession(spec)
    golden_result = golden_session.run()
    golden = _comparable(golden_result, golden_session)
    io_count = golden_result.io_count
    rng = random.Random(seed)
    kill_points = sorted(
        rng.randint(1, max(1, io_count)) for _ in range(trials)
    )
    owns_workdir = workdir is None
    base = Path(
        tempfile.mkdtemp(prefix="ecsn-sweep-") if owns_workdir else workdir
    )
    base.mkdir(parents=True, exist_ok=True)
    try:
        results = []
        for index, kill_at in enumerate(kill_points):
            directory = base / f"trial-{index:02d}"
            directory.mkdir(parents=True, exist_ok=True)
            surface, resumed_from = _crash_and_resume(
                spec, snapshot_every, kill_at, directory
            )
            results.append(
                CrashTrial(
                    kill_at=kill_at,
                    resumed_from=resumed_from,
                    identical=surface == golden,
                )
            )
        torn_dir = base / "torn-write"
        torn_dir.mkdir(parents=True, exist_ok=True)
        refused, recovered, fallback = _torn_write_drill(
            spec, snapshot_every, torn_dir, golden
        )
    finally:
        if owns_workdir:
            shutil.rmtree(base, ignore_errors=True)
    return RecoveryReport(
        spec=spec.to_dict(),
        snapshot_every=snapshot_every,
        seed=seed,
        io_count=io_count,
        trials=tuple(results),
        torn_write_refused=refused,
        torn_write_recovered=recovered,
        torn_write_fallback=fallback,
    )
