"""Crash-safe snapshot/restore for the simulation (``.ecsn`` files).

Three layers, bottom up:

* :mod:`repro.persistence.format` — the versioned, CRC-checksummed,
  torn-write-safe file envelope, the :class:`Snapshottable` protocol
  every stateful component implements, and the recovery scan
  (:func:`find_latest_valid`).
* :mod:`repro.persistence.session` — :class:`SnapshotSession`: run a
  replay with periodic whole-state snapshots, or restore one and resume
  to a bit-identical :class:`~repro.trace.replay.ReplayResult`.
* :mod:`repro.persistence.harness` — the crash-injection sweep that
  proves the bit-identity claim (``ecostor crash-test``).

See ``docs/snapshots.md`` for the byte layout and resume semantics.
"""

from repro.persistence.format import (
    FORMAT_VERSION,
    MAGIC,
    SNAPSHOT_SUFFIX,
    Snapshottable,
    find_latest_valid,
    load_snapshot,
    snapshot_count,
    snapshot_filename,
    write_snapshot,
)
from repro.persistence.harness import (
    CrashTrial,
    RecoveryReport,
    run_crash_sweep,
)
from repro.persistence.session import RunSpec, SnapshotSession

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SNAPSHOT_SUFFIX",
    "CrashTrial",
    "RecoveryReport",
    "RunSpec",
    "SnapshotSession",
    "Snapshottable",
    "find_latest_valid",
    "load_snapshot",
    "run_crash_sweep",
    "snapshot_count",
    "snapshot_filename",
    "write_snapshot",
]
