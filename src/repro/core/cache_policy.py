"""Write-delay and preload selection (paper §IV-E, §IV-F).

* **Write delay** — all P2 data items on cold enclosures are selected;
  if the write-delay cache still has headroom, P1 items with the most
  writes are added (the paper: "some of the P1 data items that have more
  write I/Os than others in cold disk enclosures are selected").  Each
  item's cache footprint is estimated as its dirty working set: the
  bytes written during the last window, capped by the item size.
* **Preload** — P1 items on cold enclosures, ranked by read I/Os per
  byte descending, are selected until the preload partition is full.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ValidationError
from repro.core.patterns import IOPattern, ItemProfile


def estimate_dirty_bytes(profile: ItemProfile) -> int:
    """Expected dirty footprint of one write-delayed item per window."""
    return min(profile.size_bytes, profile.write_bytes)


def select_write_delay_items(
    profiles: Mapping[str, ItemProfile],
    cold_enclosures: Sequence[str],
    item_locations: Mapping[str, str],
    cache_bytes: int,
    min_p1_write_ios: int = 4,
) -> set[str]:
    """Choose the data items whose writes the cache will absorb.

    P2 items are all selected (budget permitting).  P1 items qualify
    only with at least ``min_p1_write_ios`` writes in the window — the
    paper adds "P1 data items that have *more write I/Os than others*";
    selecting every P1 item with a single stray write would churn the
    selection and wake its cold enclosure with a deselection flush every
    period.
    """
    if cache_bytes < 0:
        raise ValidationError("cache_bytes must be non-negative")
    cold = set(cold_enclosures)
    selected: set[str] = set()
    budget = cache_bytes

    p2_items = sorted(
        (
            p
            for p in profiles.values()
            if p.pattern is IOPattern.P2 and item_locations[p.item_id] in cold
        ),
        key=lambda p: (-p.write_count, p.item_id),
    )
    for profile in p2_items:
        footprint = estimate_dirty_bytes(profile)
        if footprint <= budget:
            selected.add(profile.item_id)
            budget -= footprint

    p1_items = sorted(
        (
            p
            for p in profiles.values()
            if p.pattern is IOPattern.P1
            and item_locations[p.item_id] in cold
            and p.write_count >= min_p1_write_ios
        ),
        key=lambda p: (-p.write_count, p.item_id),
    )
    for profile in p1_items:
        footprint = estimate_dirty_bytes(profile)
        if footprint == 0:
            continue
        if footprint <= budget:
            selected.add(profile.item_id)
            budget -= footprint
    return selected


def select_preload_items(
    profiles: Mapping[str, ItemProfile],
    cold_enclosures: Sequence[str],
    item_locations: Mapping[str, str],
    cache_bytes: int,
    already_pinned: set[str] | None = None,
) -> list[str]:
    """Choose the P1 items to pin in the preload partition.

    Items already pinned stay selected for free when still eligible
    (paper §V-C keeps them), and their size counts against the budget.
    Returns the selection in ranking order.
    """
    if cache_bytes < 0:
        raise ValidationError("cache_bytes must be non-negative")
    cold = set(cold_enclosures)
    pinned = already_pinned or set()
    # Already-pinned items stay candidates while P0 too: a pinned item
    # with no I/O this window is still the same read-mostly item, and
    # paper §V-C explicitly "keeps data items that are already preloaded
    # into the cache".  Dropping it would force a fresh preload burst —
    # and a cold-enclosure wake-up — when it turns P1 again.
    candidates = sorted(
        (
            p
            for p in profiles.values()
            if item_locations[p.item_id] in cold
            and (
                p.pattern is IOPattern.P1
                or (p.item_id in pinned and p.pattern is IOPattern.P0)
            )
        ),
        key=lambda p: (-p.reads_per_byte, p.item_id),
    )
    selected: list[str] = []
    budget = cache_bytes
    # Keep still-eligible pinned items first: re-reading them is free.
    for profile in candidates:
        if profile.item_id in pinned and profile.size_bytes <= budget:
            selected.append(profile.item_id)
            budget -= profile.size_bytes
    for profile in candidates:
        if profile.item_id in pinned:
            continue
        if profile.size_bytes <= budget:
            selected.append(profile.item_id)
            budget -= profile.size_bytes
    return selected
