"""Logical I/O pattern classification (paper §II-C.2, §IV-B).

Each data item's window activity maps to exactly one of four patterns:

* **P0** — no I/O in the window (single Long Interval, no sequence);
* **P1** — has Long Interval(s) and sequence(s), reads are *more than*
  half of the sequence I/Os → preload candidate;
* **P2** — has Long Interval(s) and sequence(s), reads are at most half
  → write-delay candidate;
* **P3** — no Long Interval at all (one wall-to-wall I/O Sequence) → not
  suitable for power saving; lives on hot enclosures.

:func:`build_profiles` runs Step 1–3 of the paper's I/O-pattern
determination function over a whole monitoring window: split the logical
trace per data item, extract Long Intervals and I/O Sequences, classify,
and attach the per-item statistics (sizes, IOPS, time-bucketed rates)
that the hot/cold split and the placement algorithms consume.
"""

from __future__ import annotations

import enum
import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import ValidationError
from repro.core.intervals import ItemActivity, extract_activity
from repro.trace.records import LogicalIORecord


@runtime_checkable
class SupportsProfileArrays(Protocol):
    """A window buffer that exposes its I/Os as parallel columns.

    Both :class:`repro.monitoring.application.WindowColumns` and
    :class:`repro.trace.columnar.ColumnarTrace` satisfy this; feeding
    columns lets :func:`build_profiles` skip per-record attribute access
    on the classification hot path.
    """

    def profile_arrays(
        self,
    ) -> tuple[Sequence[float], Sequence[str], Sequence[int], Sequence[bool]]:
        """Return the ``(timestamps, item ids, sizes, reads)`` columns."""
        ...


class IOPattern(enum.Enum):
    """The four logical I/O patterns."""

    P0 = "P0"
    P1 = "P1"
    P2 = "P2"
    P3 = "P3"

    @property
    def is_cold_friendly(self) -> bool:
        """Whether items of this pattern belong on cold enclosures."""
        return self is not IOPattern.P3


def classify(activity: ItemActivity) -> IOPattern:
    """Map one item's window activity to its logical I/O pattern."""
    if not activity.sequences:
        return IOPattern.P0
    if not activity.long_intervals:
        return IOPattern.P3
    reads = activity.read_count
    total = activity.io_count
    if 2 * reads > total:
        return IOPattern.P1
    return IOPattern.P2


@dataclass(frozen=True)
class ItemProfile:
    """One data item's classification plus placement-relevant statistics."""

    item_id: str
    pattern: IOPattern
    activity: ItemActivity
    size_bytes: int
    enclosure: str
    #: I/Os per second averaged over the window.
    mean_iops: float
    #: Peak I/Os per second over the IOPS buckets (paper's I_it input).
    peak_iops: float
    #: Per-bucket I/O counts, aligned to the window start.
    bucket_counts: tuple[int, ...]
    read_count: int
    write_count: int
    #: Bytes written in the window (sizing input for write-delay).
    write_bytes: int
    #: Bytes read in the window.
    read_bytes: int

    @property
    def io_count(self) -> int:
        """Number of I/Os in the profile (reads plus writes)."""
        return self.read_count + self.write_count

    @property
    def reads_per_byte(self) -> float:
        """Preload ranking key: read I/Os per data byte (paper §IV-F)."""
        if self.size_bytes <= 0:
            return 0.0
        return self.read_count / self.size_bytes


#: Bucket length used when computing peak IOPS (I_max).  Chosen close to
#: the break-even time so the peak reflects sustained, spin-up-relevant
#: load rather than instantaneous bursts.
DEFAULT_IOPS_BUCKET_SECONDS = 60.0


def build_profiles(
    records: Iterable[LogicalIORecord] | SupportsProfileArrays,
    window_start: float,
    window_end: float,
    break_even_time: float,
    item_sizes: Mapping[str, int],
    item_enclosures: Mapping[str, str],
    iops_bucket_seconds: float = DEFAULT_IOPS_BUCKET_SECONDS,
) -> dict[str, ItemProfile]:
    """Classify every known data item over one monitoring window.

    ``item_sizes`` / ``item_enclosures`` enumerate all *placed* items —
    items with no I/O in the window still get a profile (pattern P0), as
    the paper's Step 1 explicitly marks them.

    The window may arrive either as an iterable of records or as any
    :class:`SupportsProfileArrays` columnar buffer; the per-I/O
    accumulation is field-for-field identical, so both inputs produce
    the same profiles.
    """
    if window_end <= window_start:
        raise ValidationError("window must have positive length")
    if iops_bucket_seconds <= 0:
        raise ValidationError("iops_bucket_seconds must be positive")

    window = window_end - window_start
    bucket_count = max(1, math.ceil(window / iops_bucket_seconds))

    events: dict[str, list[tuple[float, bool]]] = defaultdict(list)
    buckets: dict[str, list[int]] = {}
    write_bytes: defaultdict[str, int] = defaultdict(int)
    read_bytes: defaultdict[str, int] = defaultdict(int)

    if isinstance(records, SupportsProfileArrays):
        timestamps, item_ids, io_sizes, io_reads = records.profile_arrays()
        for ts, item, size, is_read in zip(
            timestamps, item_ids, io_sizes, io_reads
        ):
            events[item].append((ts, is_read))
            if item not in buckets:
                buckets[item] = [0] * bucket_count
            index = min(
                bucket_count - 1,
                int((ts - window_start) / iops_bucket_seconds),
            )
            buckets[item][index] += 1
            if is_read:
                read_bytes[item] += size
            else:
                write_bytes[item] += size
    else:
        for rec in records:
            item = rec.item_id
            events[item].append((rec.timestamp, rec.is_read))
            if item not in buckets:
                buckets[item] = [0] * bucket_count
            index = min(
                bucket_count - 1,
                int((rec.timestamp - window_start) / iops_bucket_seconds),
            )
            buckets[item][index] += 1
            if rec.is_read:
                read_bytes[item] += rec.size
            else:
                write_bytes[item] += rec.size

    profiles: dict[str, ItemProfile] = {}
    for item_id, size in item_sizes.items():
        item_events = events.get(item_id, [])
        activity = extract_activity(
            item_id, item_events, window_start, window_end, break_even_time
        )
        pattern = classify(activity)
        bucket_counts = tuple(buckets.get(item_id, [0] * bucket_count))
        last_bucket_len = window - (bucket_count - 1) * iops_bucket_seconds
        peak = 0.0
        for i, count in enumerate(bucket_counts):
            length = (
                iops_bucket_seconds if i < bucket_count - 1 else last_bucket_len
            )
            if length > 0:
                peak = max(peak, count / length)
        profiles[item_id] = ItemProfile(
            item_id=item_id,
            pattern=pattern,
            activity=activity,
            size_bytes=size,
            enclosure=item_enclosures[item_id],
            mean_iops=activity.io_count / window,
            peak_iops=peak,
            bucket_counts=bucket_counts,
            read_count=activity.read_count,
            write_count=activity.write_count,
            write_bytes=write_bytes.get(item_id, 0),
            read_bytes=read_bytes.get(item_id, 0),
        )
    return profiles


def pattern_counts(profiles: Mapping[str, ItemProfile]) -> dict[IOPattern, int]:
    """How many items fell into each pattern (paper Fig 6's measurement)."""
    counts = {pattern: 0 for pattern in IOPattern}
    for profile in profiles.values():
        counts[profile.pattern] += 1
    return counts


def pattern_fractions(
    profiles: Mapping[str, ItemProfile],
) -> dict[IOPattern, float]:
    """Pattern mix as fractions of all items (Fig 6's y-axis)."""
    counts = pattern_counts(profiles)
    total = sum(counts.values())
    if total == 0:
        return {pattern: 0.0 for pattern in IOPattern}
    return {pattern: count / total for pattern, count in counts.items()}


def items_with_pattern(
    profiles: Mapping[str, ItemProfile], pattern: IOPattern
) -> list[ItemProfile]:
    """All profiles of one pattern, in deterministic (item id) order."""
    return sorted(
        (p for p in profiles.values() if p.pattern is pattern),
        key=lambda p: p.item_id,
    )
