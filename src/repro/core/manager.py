"""The proposed energy-efficient storage management policy.

:class:`EnergyEfficientPolicy` is the paper's contribution: Algorithm 1's
power-management function executed at the end of every (adaptive)
monitoring period, plus the §V runtime power-saving method.  Each
management run performs, in order:

1. determine the Logical I/O pattern of every data item (§IV-B);
2. determine hot and cold disk enclosures (§IV-C);
3. determine data placement — Algorithms 2 and 3 with the N_hot retry
   loop (§IV-D);
4. migrate data items per the plan, evacuations first (§V-A);
5. determine and apply write delay for applicable items (§IV-E, §V-B);
6. determine and apply preload for applicable items (§IV-F, §V-C);
7. enable the power-off function for cold enclosures only (§IV-G);
8. compute the next monitoring period ``avg(long intervals) × α``
   (§IV-H).

Between management points the §V-D triggers can force an immediate rerun
when the I/O pattern shifts.

Constructor flags switch individual mechanisms off for the ablation
benchmarks; all default to the paper's full method.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.actions.plan import ActionPlan
from repro.actions.records import (
    EnableWriteDelay,
    FlushItem,
    PreloadItem,
    SetPowerOffEnabled,
    UnpinItem,
)
from repro.baselines.base import PowerPolicy
from repro.engine.clock import Throttle
from repro.core.cache_policy import (
    select_preload_items,
    select_write_delay_items,
)
from repro.core.hotcold import HotColdSplit
from repro.core.patterns import (
    DEFAULT_IOPS_BUCKET_SECONDS,
    IOPattern,
    build_profiles,
    pattern_counts,
)
from repro.core.period import collect_long_intervals, next_monitoring_period
from repro.core.placement import determine_placement
from repro.core.triggers import PatternChangeTriggers
from repro.trace.records import LogicalIORecord


@dataclass(frozen=True)
class ManagementSnapshot:
    """What one management run decided (kept for analysis/reports).

    ``moves_planned`` counts the placement plan; under fault injection
    :class:`~repro.errors.MigrationAbortedError` can cancel some of
    those moves, so the snapshot also carries what the action log says
    actually happened: :attr:`moves_executed` and :attr:`moves_aborted`.
    They are deliberately *not* dataclass fields — the golden replay
    test compares ``asdict(snapshot)`` bit-for-bit across the
    :mod:`repro.actions` refactor, and extra observability must not
    change the serialized shape.
    """

    time: float
    pattern_counts: dict[IOPattern, int]
    hot: tuple[str, ...]
    cold: tuple[str, ...]
    moves_planned: int
    bytes_moved: int
    write_delay_items: int
    preload_items: int
    next_period: float
    triggered: bool

    # Non-field attributes (class-level defaults, set per-instance via
    # object.__setattr__): executed/aborted move counts from the action
    # log, fixing the over-reporting of moves_planned under faults.
    moves_executed = 0
    moves_aborted = 0


class EnergyEfficientPolicy(PowerPolicy):
    """The paper's application-collaborative power-saving method."""

    name = "proposed"

    def __init__(
        self,
        enable_migration: bool = True,
        enable_write_delay: bool = True,
        enable_preload: bool = True,
        adaptive_period: bool = True,
        enable_triggers: bool = True,
        iops_bucket_seconds: float = DEFAULT_IOPS_BUCKET_SECONDS,
    ) -> None:
        super().__init__()
        self.enable_migration = enable_migration
        self.enable_write_delay = enable_write_delay
        self.enable_preload = enable_preload
        self.adaptive_period = adaptive_period
        self.enable_triggers = enable_triggers
        self.iops_bucket_seconds = iops_bucket_seconds

        self._period = 0.0
        self._next_checkpoint: float | None = None
        self._split: HotColdSplit | None = None
        self._triggers: PatternChangeTriggers | None = None
        self._trigger_throttle: Throttle | None = None
        self._trigger_count = 0
        #: One snapshot per management run, in time order.
        self.snapshots: list[ManagementSnapshot] = []

    # ------------------------------------------------------------------
    # PowerPolicy interface
    # ------------------------------------------------------------------
    def on_start(self, now: float) -> None:
        """Initialise the monitoring period and pattern-change triggers."""
        context = self._require_context()
        self._period = context.config.initial_monitoring_period
        self._next_checkpoint = now + self._period
        config = context.config
        self._triggers = PatternChangeTriggers(config.break_even_time)
        self._triggers.reset(now)
        # Trigger evaluation is cheap but runs per I/O; throttle it to a
        # few checks per break-even period (§V-D).
        self._trigger_throttle = Throttle(
            config.break_even_time * config.trigger_check_fraction
        )
        self._trigger_throttle.reset(now)
        # Until the first analysis nothing is known: keep everything on.
        self.executor().apply(
            now,
            ActionPlan(
                [
                    SetPowerOffEnabled(enclosure.name, False)
                    for enclosure in context.enclosures
                ]
            ),
        )

    def next_checkpoint(self) -> float | None:
        """Time of the next periodic management checkpoint."""
        return self._next_checkpoint

    def on_checkpoint(self, now: float) -> ActionPlan | None:
        """Run one management cycle (analysis plus determination)."""
        return self._run_management(now, triggered=False)

    def after_io(self, record: LogicalIORecord, response_time: float) -> None:
        """Check pattern-change triggers against the finished I/O."""
        if not self.enable_triggers or self._split is None:
            return
        now = record.timestamp
        throttle = self._trigger_throttle
        if throttle is None or not throttle.ready(now):
            return
        context = self._require_context()
        throttle.arm(now)
        assert self._triggers is not None
        result = self._triggers.check(
            now,
            hot=self._split.hot,
            cold=self._split.cold,
            storage_monitor=context.storage_monitor,
        )
        if result.fired:
            self._trigger_count += 1
            self._run_management(now, triggered=True)

    def after_io_fast(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
        response_time: float,
    ) -> None:
        """Scalar variant: the trigger check needs only the timestamp."""
        if not self.enable_triggers or self._split is None:
            return
        throttle = self._trigger_throttle
        if throttle is None or not throttle.ready(timestamp):
            return
        context = self._require_context()
        throttle.arm(timestamp)
        assert self._triggers is not None
        result = self._triggers.check(
            timestamp,
            hot=self._split.hot,
            cold=self._split.cold,
            storage_monitor=context.storage_monitor,
        )
        if result.fired:
            self._trigger_count += 1
            self._run_management(timestamp, triggered=True)

    # ------------------------------------------------------------------
    # the power-management function (Algorithm 1)
    # ------------------------------------------------------------------
    def _run_management(self, now: float, triggered: bool) -> ActionPlan | None:
        context = self._require_context()
        config = context.config
        app = context.app_monitor
        window_start = app.window_start
        if now <= window_start:
            return None

        virt = context.virtualization
        item_sizes = {item: virt.item_size(item) for item in virt.item_ids()}
        item_enclosures = {
            item: virt.enclosure_of(item).name for item in virt.item_ids()
        }

        # Step 1: logical I/O patterns (fed columns, not record objects).
        profiles = build_profiles(
            app.window_columns(),
            window_start,
            now,
            config.break_even_time,
            item_sizes,
            item_enclosures,
            iops_bucket_seconds=self.iops_bucket_seconds,
        )

        # Steps 2-3: hot/cold split and placement plan (with hysteresis
        # toward the current hot set, to avoid migration thrash).
        previous_split = self._split
        split, plan = determine_placement(
            profiles,
            virt.enclosure_names,
            config.max_iops_random,
            config.enclosure_size_bytes,
            self.iops_bucket_seconds,
            preferred_hot=set(self._split.hot) if self._split else None,
        )
        self.determinations += 1
        self._split = split

        # Step 4: plan and apply migrations (each moved item's dirty
        # data is flushed first, so its delayed writes land on its old
        # home before the mapping changes; unaffected items keep
        # buffering — a full flush here would wake every cold enclosure
        # each window).
        executor = self.executor()
        migration_plan = ActionPlan()
        bytes_moved = 0
        moves_executed = 0
        moves_aborted = 0
        if self.enable_migration and plan:
            migration_plan.extend(
                FlushItem(move.item_id) for move in plan.moves
            )
            migration_plan.extend(plan.as_actions())
            report = executor.apply(now, migration_plan)
            bytes_moved = report.bytes_moved
            moves_executed = report.moves_executed
            moves_aborted = report.moves_aborted

        locations = {
            item: virt.enclosure_of(item).name for item in virt.item_ids()
        }

        # Step 5: write delay for applicable data items.
        write_delay_items: set[str] = set()
        if self.enable_write_delay:
            write_delay_items = select_write_delay_items(
                profiles,
                split.cold,
                locations,
                config.write_delay_cache_bytes,
            )

        # Step 6: preload for applicable data items.
        preload_items: list[str] = []
        if self.enable_preload:
            preload_items = select_preload_items(
                profiles,
                split.cold,
                locations,
                config.preload_cache_bytes,
                already_pinned=context.cache.preload.item_ids(),
            )
        stale_items = sorted(
            context.cache.preload.item_ids() - set(preload_items)
        )

        # Steps 5-7 as one cache/power plan: reselect write delay, evict
        # stale preloads, pin the new set, then enable power-off only
        # for the cold enclosures — the executor's degraded-mode gate
        # keeps a cold enclosure powered while its spin-ups keep failing.
        cache_power_plan = ActionPlan()
        # EnableWriteDelay canonicalises the set itself (sorted tuple).
        cache_power_plan.add(
            EnableWriteDelay(tuple(write_delay_items))  # analysis: ignore[D204]
        )
        cache_power_plan.extend(UnpinItem(stale) for stale in stale_items)
        cache_power_plan.extend(PreloadItem(item) for item in preload_items)
        cache_power_plan.extend(
            SetPowerOffEnabled(
                enclosure.name, split.is_cold(enclosure.name)
            )
            for enclosure in context.enclosures
        )
        executor.apply(now, cache_power_plan)

        # Step 8: next monitoring period.
        if self.adaptive_period:
            self._period = next_monitoring_period(
                collect_long_intervals(profiles),
                self._period,
                config.monitoring_alpha,
                config.max_monitoring_period,
                min_period=config.initial_monitoring_period,
            )
        self._next_checkpoint = now + self._period

        app.begin_window(now)
        context.storage_monitor.begin_window(now)
        assert self._triggers is not None
        self._triggers.reset(now)

        # Anti-storm guard: if this run changed nothing (same hot/cold
        # split, no data moved), re-running management cannot fix
        # whatever condition fired — e.g. a hot enclosure whose traffic
        # is entirely absorbed by the cache looks physically idle while
        # its logical pattern stays P3.  Suspend trigger checks until
        # the next scheduled checkpoint.
        unchanged = (
            previous_split is not None
            and previous_split.hot == split.hot
            and bytes_moved == 0
        )
        if (
            unchanged
            and self._next_checkpoint is not None
            and self._trigger_throttle is not None
        ):
            self._trigger_throttle.defer_until(self._next_checkpoint)

        snapshot = ManagementSnapshot(
            time=now,
            pattern_counts=pattern_counts(profiles),
            hot=split.hot,
            cold=split.cold,
            moves_planned=len(plan),
            bytes_moved=bytes_moved,
            write_delay_items=len(write_delay_items),
            preload_items=len(preload_items),
            next_period=self._period,
            triggered=triggered,
        )
        object.__setattr__(snapshot, "moves_executed", moves_executed)
        object.__setattr__(snapshot, "moves_aborted", moves_aborted)
        self.snapshots.append(snapshot)

        applied = ActionPlan(list(migration_plan.actions))
        applied.extend(cache_power_plan)
        return applied

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Period, split, trigger, and snapshot books, on top of the base.

        The trigger objects are captured as their mutable scalars and
        rebuilt on restore; management snapshots are frozen dataclasses
        (plus their two instance-dict counters) and ride along whole.
        """
        state = super().snapshot_state()
        split = self._split
        throttle = self._trigger_throttle
        state.update(
            period=self._period,
            next_checkpoint=self._next_checkpoint,
            split=(
                None
                if split is None
                else (split.hot, split.cold, split.i_max, split.n_hot)
            ),
            triggers=(
                None
                if self._triggers is None
                else {
                    "break_even_time": self._triggers.break_even_time,
                    "period_end": self._triggers._period_end,
                }
            ),
            trigger_throttle=(
                None if throttle is None else throttle.snapshot_state()
            ),
            trigger_count=self._trigger_count,
            snapshots=[
                (
                    snapshot,
                    snapshot.moves_executed,
                    snapshot.moves_aborted,
                )
                for snapshot in self.snapshots
            ],
        )
        return state

    def restore_state(self, state: dict) -> None:
        """Restore the policy exactly as :meth:`snapshot_state` captured it."""
        super().restore_state(state)
        self._period = state["period"]
        self._next_checkpoint = state["next_checkpoint"]
        split = state["split"]
        self._split = (
            None
            if split is None
            else HotColdSplit(
                hot=tuple(split[0]),
                cold=tuple(split[1]),
                i_max=split[2],
                n_hot=split[3],
            )
        )
        triggers = state["triggers"]
        if triggers is None:
            self._triggers = None
        else:
            self._triggers = PatternChangeTriggers(triggers["break_even_time"])
            self._triggers.reset(triggers["period_end"])
        throttle_state = state["trigger_throttle"]
        if throttle_state is None:
            self._trigger_throttle = None
        else:
            self._trigger_throttle = Throttle(throttle_state["interval_seconds"])
            self._trigger_throttle.restore_state(throttle_state)
        self._trigger_count = state["trigger_count"]
        self.snapshots = []
        for snapshot, executed, aborted in state["snapshots"]:
            object.__setattr__(snapshot, "moves_executed", executed)
            object.__setattr__(snapshot, "moves_aborted", aborted)
            self.snapshots.append(snapshot)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    @property
    def trigger_count(self) -> int:
        """How many management runs the §V-D triggers forced."""
        return self._trigger_count

    def latest_profiles_summary(self) -> dict[IOPattern, int] | None:
        """Pattern counts from the most recent management run."""
        if not self.snapshots:
            return None
        return dict(self.snapshots[-1].pattern_counts)
