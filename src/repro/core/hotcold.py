"""Hot/cold disk-enclosure determination (paper §IV-C).

Hot enclosures host the P3 data items (frequently accessed, no long
intervals); everything else becomes a cold enclosure eligible for
power-off.  The split follows the paper's three steps:

1. ``I_max`` — the peak aggregate IOPS of all P3 items over time buckets;
2. ``N_hot = max(ceil(I_max / O), ceil(Σ size_P3 / S))`` — enough hot
   enclosures to serve the P3 load *and* store the P3 bytes;
3. choose the ``N_hot`` enclosures holding the most P3 bytes (descending)
   so the least P3 data needs to move.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ValidationError
from repro.core.patterns import IOPattern, ItemProfile


@dataclass(frozen=True)
class HotColdSplit:
    """Result of the hot/cold determination."""

    hot: tuple[str, ...]
    cold: tuple[str, ...]
    i_max: float
    n_hot: int

    def is_hot(self, enclosure: str) -> bool:
        """Whether the enclosure is in the hot (always-on) tier."""
        return enclosure in self.hot

    def is_cold(self, enclosure: str) -> bool:
        """Whether the enclosure is in the cold (power-managed) tier."""
        return enclosure in self.cold


def _p3_totals(
    profiles: Mapping[str, ItemProfile],
) -> tuple[dict[int, int], int]:
    """One pass over the profiles: per-bucket P3 I/O totals + P3 bytes.

    Both Step 1 (``I_max``) and Step 2 (the byte bound on ``N_hot``)
    reduce over the same P3 subset; a shared pass keeps the per-window
    determination cost at one profile scan instead of two.
    """
    totals: defaultdict[int, int] = defaultdict(int)
    p3_bytes = 0
    for profile in profiles.values():
        if profile.pattern is not IOPattern.P3:
            continue
        p3_bytes += profile.size_bytes
        for index, count in enumerate(profile.bucket_counts):
            totals[index] += count
    return totals, p3_bytes


def _peak_from_totals(
    totals: Mapping[int, int], bucket_seconds: float, percentile: float
) -> float:
    if not totals:
        return 0.0
    values = sorted(totals.values())
    index = max(0, math.ceil(len(values) * percentile / 100.0) - 1)
    return values[index] / bucket_seconds


def p3_peak_aggregate_iops(
    profiles: Mapping[str, ItemProfile],
    bucket_seconds: float,
    percentile: float = 95.0,
) -> float:
    """``I_max``: peak over time of the summed IOPS of all P3 items.

    Uses the profiles' aligned bucket counts, so simultaneous bursts of
    different items add up in the bucket where they coincide — the
    paper's ``max_t Σ_i I_it``.  The peak is taken as a high percentile
    of the bucket sums rather than the strict maximum: at simulation
    scale each bucket holds few I/Os, and a single noisy bucket would
    inflate ``N_hot`` and churn the hot set window over window.
    """
    if bucket_seconds <= 0:
        raise ValidationError("bucket_seconds must be positive")
    if not 0 < percentile <= 100:
        raise ValidationError("percentile must be in (0, 100]")
    totals, _ = _p3_totals(profiles)
    return _peak_from_totals(totals, bucket_seconds, percentile)


def required_hot_count(
    profiles: Mapping[str, ItemProfile],
    max_enclosure_iops: float,
    enclosure_size_bytes: int,
    bucket_seconds: float,
) -> tuple[int, float]:
    """``(N_hot, I_max)`` per the paper's Step 1 and Step 2."""
    if max_enclosure_iops <= 0:
        raise ValidationError("max_enclosure_iops must be positive")
    if enclosure_size_bytes <= 0:
        raise ValidationError("enclosure_size_bytes must be positive")
    if bucket_seconds <= 0:
        raise ValidationError("bucket_seconds must be positive")
    totals, p3_bytes = _p3_totals(profiles)
    i_max = _peak_from_totals(totals, bucket_seconds, 95.0)
    n_for_iops = math.ceil(i_max / max_enclosure_iops)
    n_for_size = math.ceil(p3_bytes / enclosure_size_bytes)
    return max(n_for_iops, n_for_size), i_max


def choose_hot_cold(
    profiles: Mapping[str, ItemProfile],
    enclosure_names: Sequence[str],
    n_hot: int,
    i_max: float,
    preferred_hot: set[str] | None = None,
    stickiness: float = 1.25,
) -> HotColdSplit:
    """Step 3: pick the ``n_hot`` enclosures richest in P3 bytes.

    Ties break on enclosure name for determinism.  ``n_hot`` beyond the
    enclosure count selects everything as hot (paper: "If N_hot is larger
    than the number of disk enclosures, all ... are selected as hot").

    ``preferred_hot`` applies hysteresis: enclosures that are already
    hot get their P3 bytes weighted by ``stickiness``, so borderline
    windows do not flip the hot set back and forth — the paper's method
    "intends to keep the initial data placement in order to avoid data
    migration overhead" (§IV-A), and set churn would also thrash the
    power-off enablement of the cold enclosures.
    """
    if n_hot < 0:
        raise ValidationError("n_hot must be non-negative")
    if stickiness < 1.0:
        raise ValidationError("stickiness must be >= 1")
    preferred = preferred_hot or set()
    p3_bytes: defaultdict[str, float] = defaultdict(float)
    for profile in profiles.values():
        if profile.pattern is IOPattern.P3:
            p3_bytes[profile.enclosure] += profile.size_bytes
    ranked = sorted(
        enclosure_names,
        key=lambda name: (
            -p3_bytes.get(name, 0.0)
            * (stickiness if name in preferred else 1.0),
            name not in preferred,
            name,
        ),
    )
    n_hot = min(n_hot, len(ranked))
    return HotColdSplit(
        hot=tuple(sorted(ranked[:n_hot])),
        cold=tuple(sorted(ranked[n_hot:])),
        i_max=i_max,
        n_hot=n_hot,
    )


def determine_hot_cold(
    profiles: Mapping[str, ItemProfile],
    enclosure_names: Sequence[str],
    max_enclosure_iops: float,
    enclosure_size_bytes: int,
    bucket_seconds: float,
) -> HotColdSplit:
    """The full §IV-C procedure: Steps 1–3 in one call."""
    n_hot, i_max = required_hot_count(
        profiles, max_enclosure_iops, enclosure_size_bytes, bucket_seconds
    )
    return choose_hot_cold(profiles, enclosure_names, n_hot, i_max)
