"""Runtime I/O-pattern-change triggers (paper §V-D).

The power-management function normally runs at the end of each
monitoring period, but two conditions force it to run immediately, so
the method keeps saving energy when the workload shifts mid-period:

i.  a **hot** enclosure develops an I/O interval longer than the
    break-even time — it may have turned cold;
ii. a **cold** enclosure has been powered on more than
    ``m = 2 × (t_c − t_e) / l_b`` times since the previous management
    point ``t_e`` (``l_b`` is the break-even time) — it is being woken
    too often to be worth powering off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ValidationError
from repro.monitoring.storage import StorageMonitor


@dataclass(frozen=True)
class TriggerResult:
    """Outcome of a trigger check."""

    fired: bool
    reason: str = ""


class PatternChangeTriggers:
    """Evaluates the §V-D early-recomputation conditions."""

    def __init__(self, break_even_time: float) -> None:
        if break_even_time <= 0:
            raise ValidationError("break_even_time must be positive")
        self.break_even_time = break_even_time
        self._period_end = 0.0

    def reset(self, period_end_time: float) -> None:
        """Mark the end of a management run (the paper's ``t_e``)."""
        self._period_end = period_end_time

    def allowed_spin_ups(self, now: float) -> float:
        """The §V-D bound ``m = 2 × (t_c − t_e) / l_b``."""
        return 2.0 * (now - self._period_end) / self.break_even_time

    def check(
        self,
        now: float,
        hot: Sequence[str],
        cold: Sequence[str],
        storage_monitor: StorageMonitor,
    ) -> TriggerResult:
        """Evaluate both conditions at virtual time ``now``.

        Both conditions are suppressed until one break-even time has
        elapsed since the last management run: earlier than that the
        spin-up budget ``m`` is below 2, so a single (expected) wake-up
        of a cold enclosure would re-trigger management in a storm.
        """
        if now - self._period_end <= self.break_even_time:
            return TriggerResult(False)
        for name in hot:
            last = storage_monitor.last_io_time(name)
            reference = last if last is not None else self._period_end
            if now - reference > self.break_even_time:
                return TriggerResult(
                    True,
                    f"hot enclosure {name} idle longer than break-even",
                )
        budget = self.allowed_spin_ups(now)
        for name in cold:
            spin_ups = storage_monitor.spin_ups_since(name, self._period_end)
            if spin_ups > budget:
                return TriggerResult(
                    True,
                    f"cold enclosure {name} spun up {spin_ups} times "
                    f"(budget {budget:.1f})",
                )
        return TriggerResult(False)
