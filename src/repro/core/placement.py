"""Data-placement planning: paper Algorithms 2 and 3 (§IV-D).

Algorithm 2 consolidates P3 data items from cold enclosures onto hot
ones, always offering an item to the hot enclosure with the lowest
projected average IOPS (load balancing) subject to two constraints:
the enclosure's served-IOPS capacity ``O`` and its size ``S``.  When no
hot enclosure has room, Algorithm 3 evacuates P0/P1/P2 items from hot
enclosures to cold ones (preferring the *busiest* cold enclosure as the
sink, so the quietest cold enclosures stay quiet).  When the hot set
simply cannot absorb the P3 load, ``N_hot`` is increased and the whole
planning retried — :func:`determine_placement` owns that retry loop.

The planner works on *projected* state (an :class:`EnclosureLedger`);
nothing moves until the runtime method executes the returned
:class:`~repro.storage.migration.PlacementPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.hotcold import HotColdSplit, choose_hot_cold, required_hot_count
from repro.core.patterns import IOPattern, ItemProfile
from repro.errors import PlacementError, ValidationError
from repro.storage.migration import PlacementPlan


class HotSetTooSmall(PlacementError):
    """Algorithm 2 found the hot enclosures cannot serve the P3 IOPS.

    ``item_id`` names the mover that overflowed (when one did): the
    caller can pin that item in place instead of growing the hot set —
    the right response when a single near-saturating item (a log device
    running just under ``O``) is the whole problem.
    """

    def __init__(self, message: str, item_id: str | None = None) -> None:
        super().__init__(message)
        self.item_id = item_id


@dataclass
class _EnclosureState:
    """Projected load/size of one enclosure during planning."""

    name: str
    used_bytes: int = 0
    mean_iops: float = 0.0
    bucket_counts: list[int] = field(default_factory=list)

    def peak_iops(self, bucket_seconds: float) -> float:
        if not self.bucket_counts:
            return 0.0
        return max(self.bucket_counts) / bucket_seconds


class EnclosureLedger:
    """Projected per-enclosure usage while the planner assigns items."""

    def __init__(
        self,
        enclosure_names: Sequence[str],
        profiles: Mapping[str, ItemProfile],
        bucket_seconds: float,
    ) -> None:
        if bucket_seconds <= 0:
            raise ValidationError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        bucket_len = max(
            (len(p.bucket_counts) for p in profiles.values()), default=1
        )
        self._states = {
            name: _EnclosureState(name, bucket_counts=[0] * bucket_len)
            for name in enclosure_names
        }
        self._location: dict[str, str] = {}
        self._profiles = profiles
        for profile in profiles.values():
            self._place(profile, profile.enclosure)

    def _place(self, profile: ItemProfile, enclosure: str) -> None:
        state = self._states[enclosure]
        state.used_bytes += profile.size_bytes
        state.mean_iops += profile.mean_iops
        for index, count in enumerate(profile.bucket_counts):
            state.bucket_counts[index] += count
        self._location[profile.item_id] = enclosure

    def _unplace(self, profile: ItemProfile) -> None:
        state = self._states[self._location[profile.item_id]]
        state.used_bytes -= profile.size_bytes
        state.mean_iops -= profile.mean_iops
        for index, count in enumerate(profile.bucket_counts):
            state.bucket_counts[index] -= count

    def move(self, item_id: str, target: str) -> None:
        """Reassign an item to another enclosure, updating both tallies."""
        profile = self._profiles[item_id]
        self._unplace(profile)
        self._place(profile, target)

    def location(self, item_id: str) -> str:
        """Enclosure currently holding the item."""
        return self._location[item_id]

    def used_bytes(self, enclosure: str) -> int:
        """Bytes of item data placed on the enclosure."""
        return self._states[enclosure].used_bytes

    def mean_iops(self, enclosure: str) -> float:
        """Mean IOPS aggregated over items placed on the enclosure."""
        return self._states[enclosure].mean_iops

    def peak_iops(self, enclosure: str) -> float:
        """Peak bucketed IOPS among items placed on the enclosure."""
        return self._states[enclosure].peak_iops(self.bucket_seconds)

    def items_on(self, enclosure: str) -> list[str]:
        """Sorted ids of the items placed on the enclosure."""
        return sorted(
            item for item, loc in self._location.items() if loc == enclosure
        )


def plan_evacuation(
    ledger: EnclosureLedger,
    plan: PlacementPlan,
    hot_enclosure: str,
    needed_bytes: int,
    cold: Sequence[str],
    max_enclosure_iops: float,
    enclosure_size_bytes: int,
) -> bool:
    """Paper Algorithm 3: free ``needed_bytes`` on one hot enclosure.

    Moves P0/P1/P2 items from the hot enclosure to cold enclosures,
    preferring the cold enclosure whose projected peak IOPS is largest
    (conditions: the item fits, and peak + item IOPS stays under ``O``).
    Returns True when enough space was freed.
    """
    if not cold:
        return False
    freed = 0
    movable = [
        ledger._profiles[item]
        for item in ledger.items_on(hot_enclosure)
        if ledger._profiles[item].pattern is not IOPattern.P3
    ]
    # Largest items first frees space with the fewest moves.
    movable.sort(key=lambda p: (-p.size_bytes, p.item_id))
    for profile in movable:
        if freed >= needed_bytes:
            break
        # Cold enclosures by descending projected peak IOPS (I_max).
        targets = sorted(
            cold, key=lambda name: (-ledger.peak_iops(name), name)
        )
        for target in targets:
            fits = (
                profile.size_bytes
                <= enclosure_size_bytes - ledger.used_bytes(target)
            )
            load_ok = (
                ledger.peak_iops(target) + profile.peak_iops
                < max_enclosure_iops
            )
            if fits and load_ok:
                ledger.move(profile.item_id, target)
                plan.add(profile.item_id, target, evacuation=True)
                freed += profile.size_bytes
                break
    return freed >= needed_bytes


def plan_p3_consolidation(
    ledger: EnclosureLedger,
    split: HotColdSplit,
    max_enclosure_iops: float,
    enclosure_size_bytes: int,
    stuck_enclosures: set[str] | None = None,
    excluded_items: set[str] | None = None,
) -> PlacementPlan:
    """Paper Algorithm 2: move P3 items from cold to hot enclosures.

    ``excluded_items`` are movers pinned in place by the caller (their
    enclosures must then be treated as hot).

    Raises :class:`HotSetTooSmall` when the hot set cannot serve the P3
    IOPS — the caller then increases ``N_hot`` and retries.

    A P3 item whose own IOPS reaches the enclosure capacity ``O`` can
    never be consolidated anywhere (a dedicated log device is the
    classic case: "Put log to 1 Storage Device", Table I).  Such items
    stay put and their current enclosure is reported through
    ``stuck_enclosures`` so the caller keeps it powered as hot.
    """
    plan = PlacementPlan()
    movers_exist = any(
        p.pattern is IOPattern.P3 for p in ledger._profiles.values()
    )
    if not split.hot:
        if movers_exist:
            raise HotSetTooSmall("P3 items exist but the hot set is empty")
        return plan

    excluded = excluded_items or set()
    movers = []
    for profile in ledger._profiles.values():
        if profile.pattern is not IOPattern.P3:
            continue
        location = ledger.location(profile.item_id)
        if location not in split.cold:
            continue
        if (
            profile.mean_iops >= max_enclosure_iops
            or profile.item_id in excluded
        ):
            # Unmovable (saturates any enclosure by itself) or pinned by
            # the caller after a previous overflow.
            if stuck_enclosures is not None:
                stuck_enclosures.add(location)
            continue
        movers.append(profile)
    # Paper: sort M by IOPS/size descending (hottest bytes first).
    movers.sort(
        key=lambda p: (
            -(p.mean_iops / p.size_bytes if p.size_bytes else 0.0),
            p.item_id,
        )
    )
    for profile in movers:
        placed = False
        # Hot enclosures by ascending projected average IOPS.
        candidates = sorted(
            split.hot, key=lambda name: (ledger.mean_iops(name), name)
        )
        for target in candidates:
            if (
                profile.mean_iops + ledger.mean_iops(target)
                >= max_enclosure_iops
            ):
                # Even the least-loaded hot enclosure overflows on IOPS:
                # the hot set is too small (paper: "increase N_hot").
                raise HotSetTooSmall(
                    f"P3 item {profile.item_id!r} overloads hot enclosure "
                    f"{target!r}",
                    item_id=profile.item_id,
                )
            if (
                profile.size_bytes + ledger.used_bytes(target)
                <= enclosure_size_bytes
            ):
                ledger.move(profile.item_id, target)
                plan.add(profile.item_id, target, evacuation=False)
                placed = True
                break
            # Size overflow: try evacuating P0/P1/P2 from this hot
            # enclosure (Algorithm 3), then place here.
            needed = (
                profile.size_bytes
                + ledger.used_bytes(target)
                - enclosure_size_bytes
            )
            if plan_evacuation(
                ledger,
                plan,
                target,
                needed,
                split.cold,
                max_enclosure_iops,
                enclosure_size_bytes,
            ):
                ledger.move(profile.item_id, target)
                plan.add(profile.item_id, target, evacuation=False)
                placed = True
                break
        if not placed:
            raise HotSetTooSmall(
                f"no hot enclosure can hold P3 item {profile.item_id!r}"
            )
    return plan


def determine_placement(
    profiles: Mapping[str, ItemProfile],
    enclosure_names: Sequence[str],
    max_enclosure_iops: float,
    enclosure_size_bytes: int,
    bucket_seconds: float,
    preferred_hot: set[str] | None = None,
) -> tuple[HotColdSplit, PlacementPlan]:
    """Hot/cold split plus placement plan, with the N_hot retry loop.

    Starts from the §IV-C lower bound on ``N_hot`` and grows it while
    Algorithm 2 reports the hot set too small.  With every enclosure hot
    there is nothing left to plan (and nothing to power off) — the paper
    accepts that outcome, so this function never raises for feasibility.
    """
    n_hot_min, i_max = required_hot_count(
        profiles, max_enclosure_iops, enclosure_size_bytes, bucket_seconds
    )
    total = len(enclosure_names)
    for n_hot in range(min(n_hot_min, total), total + 1):
        split = choose_hot_cold(
            profiles, enclosure_names, n_hot, i_max, preferred_hot
        )
        excluded: set[str] = set()
        while True:
            ledger = EnclosureLedger(
                enclosure_names, profiles, bucket_seconds
            )
            stuck: set[str] = set()
            try:
                plan = plan_p3_consolidation(
                    ledger,
                    split,
                    max_enclosure_iops,
                    enclosure_size_bytes,
                    stuck_enclosures=stuck,
                    excluded_items=excluded,
                )
            except HotSetTooSmall as error:
                if (
                    error.item_id is not None
                    and error.item_id not in excluded
                    and len(excluded) < len(profiles)
                ):
                    # One near-saturating mover is the blocker: pin it
                    # in place (its enclosure becomes hot) and retry at
                    # the same N_hot instead of escalating to all-hot.
                    excluded.add(error.item_id)
                    continue
                break  # genuinely under-provisioned: grow N_hot
            if stuck - set(split.hot):
                # Enclosures pinned by unmovable P3 items count as hot.
                hot = tuple(sorted(set(split.hot) | stuck))
                cold = tuple(n for n in split.cold if n not in stuck)
                split = HotColdSplit(
                    hot=hot, cold=cold, i_max=split.i_max, n_hot=len(hot)
                )
            return split, plan
    # Everything hot: keep data where it is.
    split = choose_hot_cold(profiles, enclosure_names, total, i_max)
    return split, PlacementPlan()
