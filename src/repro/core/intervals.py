"""Long Intervals and I/O Sequences (paper §II-C.2, Fig 1).

Given the I/O times of one data item inside a monitoring window and the
break-even time, the window partitions into:

* **Long Intervals** — I/O-free gaps strictly longer than the break-even
  time, including the boundary gaps before the first and after the last
  I/O (Fig 1's "Long Interval #3 ends at the end of a monitoring
  period");
* **I/O Sequences** — maximal runs of I/Os whose internal gaps are all at
  most the break-even time ("a sequence of some read/write I/Os to a data
  item and I/O interval(s) shorter than the break-even time").

A data item with no I/O at all has a single Long Interval covering the
whole window and no I/O Sequence — the signature of pattern P0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ValidationError
from repro.trace.records import LogicalIORecord


@dataclass(frozen=True)
class Interval:
    """An I/O-free gap inside a monitoring window."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError(f"interval end {self.end} before start {self.start}")

    @property
    def length(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class IOSequence:
    """A maximal run of I/Os with only short internal gaps."""

    start: float
    end: float
    read_count: int
    write_count: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError(f"sequence end {self.end} before start {self.start}")
        if self.read_count < 0 or self.write_count < 0:
            raise ValidationError("counts must be non-negative")
        if self.read_count + self.write_count == 0:
            raise ValidationError("an I/O sequence must contain at least one I/O")

    @property
    def io_count(self) -> int:
        """Number of I/Os in this access sequence."""
        return self.read_count + self.write_count

    @property
    def duration(self) -> float:
        """Wall-clock span of the analysed window, in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class ItemActivity:
    """The interval/sequence decomposition of one data item's window."""

    item_id: str
    window_start: float
    window_end: float
    long_intervals: tuple[Interval, ...]
    sequences: tuple[IOSequence, ...]

    @property
    def io_count(self) -> int:
        """Total number of I/Os across all sequences."""
        return sum(seq.io_count for seq in self.sequences)

    @property
    def read_count(self) -> int:
        """Total read count across all sequences."""
        return sum(seq.read_count for seq in self.sequences)

    @property
    def write_count(self) -> int:
        """Total write count across all sequences."""
        return sum(seq.write_count for seq in self.sequences)

    @property
    def has_long_interval(self) -> bool:
        """Whether any interval exceeds the break-even time."""
        return bool(self.long_intervals)

    @property
    def total_long_interval_length(self) -> float:
        """Summed length of all long intervals, in seconds."""
        return sum(interval.length for interval in self.long_intervals)


def extract_activity(
    item_id: str,
    events: Sequence[tuple[float, bool]],
    window_start: float,
    window_end: float,
    break_even_time: float,
) -> ItemActivity:
    """Decompose one item's window into Long Intervals and I/O Sequences.

    ``events`` are time-ordered ``(timestamp, is_read)`` pairs inside the
    window.  ``break_even_time`` is the Long-Interval threshold: a gap
    qualifies iff it is *strictly longer* than the break-even time.
    """
    if window_end < window_start:
        raise ValidationError(
            f"window end {window_end} before start {window_start}"
        )
    if break_even_time <= 0:
        raise ValidationError("break_even_time must be positive")

    long_intervals: list[Interval] = []
    sequences: list[IOSequence] = []

    if not events:
        long_intervals.append(Interval(window_start, window_end))
        return ItemActivity(
            item_id=item_id,
            window_start=window_start,
            window_end=window_end,
            long_intervals=tuple(long_intervals),
            sequences=(),
        )

    previous = window_start
    seq_start: float | None = None
    seq_reads = 0
    seq_writes = 0
    seq_end = window_start

    def close_sequence() -> None:
        nonlocal seq_start, seq_reads, seq_writes
        if seq_start is not None:
            sequences.append(
                IOSequence(
                    start=seq_start,
                    end=seq_end,
                    read_count=seq_reads,
                    write_count=seq_writes,
                )
            )
        seq_start = None
        seq_reads = 0
        seq_writes = 0

    last_time = window_start
    for timestamp, is_read in events:
        if timestamp < last_time:
            raise ValidationError(
                f"events of item {item_id!r} are not time-ordered: "
                f"{timestamp} after {last_time}"
            )
        last_time = timestamp
        gap = timestamp - previous
        if gap > break_even_time:
            long_intervals.append(Interval(previous, timestamp))
            close_sequence()
        if seq_start is None:
            seq_start = timestamp
        if is_read:
            seq_reads += 1
        else:
            seq_writes += 1
        seq_end = timestamp
        previous = timestamp

    trailing = window_end - previous
    if trailing > break_even_time:
        long_intervals.append(Interval(previous, window_end))
    close_sequence()

    return ItemActivity(
        item_id=item_id,
        window_start=window_start,
        window_end=window_end,
        long_intervals=tuple(long_intervals),
        sequences=tuple(sequences),
    )


def activity_from_records(
    item_id: str,
    records: Sequence[LogicalIORecord],
    window_start: float,
    window_end: float,
    break_even_time: float,
) -> ItemActivity:
    """Convenience wrapper taking :class:`LogicalIORecord` objects."""
    events = [(rec.timestamp, rec.is_read) for rec in records]
    return extract_activity(
        item_id, events, window_start, window_end, break_even_time
    )
