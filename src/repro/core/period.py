"""Adaptive monitoring-period calculation (paper §IV-H).

``I_new = average(I_cur) × α`` where ``I_cur`` are all Long Intervals
measured in the current period and α > 1 (Table II: 1.2).  The α factor
grows the period when intervals are longer than the period itself, so
the management function stops waking up (and burning CPU) when nothing
changes — the paper credits this for the proposed method's 5 placement
determinations versus PDC's 11 on the File Server run.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ValidationError
from repro.core.patterns import ItemProfile


def next_monitoring_period(
    long_interval_lengths: Iterable[float],
    current_period: float,
    alpha: float,
    max_period: float,
    min_period: float = 0.0,
) -> float:
    """Length of the next monitoring period.

    With no long intervals observed there is no signal; the current
    period is kept.  The result is clamped to ``[min_period, max_period]``.
    The floor matters because observed Long Intervals are truncated by
    the window itself — ``avg(I_cur)`` can never exceed the window
    length, so without a floor a burst of short intervals would spiral
    the period (and the management CPU cost the paper §IV-H wants to
    avoid) downward.
    """
    if alpha <= 1.0:
        raise ValidationError("alpha must be > 1")
    if current_period <= 0:
        raise ValidationError("current_period must be positive")
    if max_period <= 0:
        raise ValidationError("max_period must be positive")
    if min_period < 0 or min_period > max_period:
        raise ValidationError("need 0 <= min_period <= max_period")
    lengths = list(long_interval_lengths)
    if not lengths:
        return max(min_period, min(current_period, max_period))
    average = sum(lengths) / len(lengths)
    return max(min_period, min(average * alpha, max_period))


def collect_long_intervals(
    profiles: Mapping[str, ItemProfile],
) -> list[float]:
    """All Long-Interval lengths across every data item's activity."""
    lengths: list[float] = []
    for profile in profiles.values():
        for interval in profile.activity.long_intervals:
            lengths.append(interval.length)
    return lengths
