"""Core power management: the paper's primary contribution.

Logical I/O pattern classification (P0-P3), hot/cold enclosure
determination, data-placement Algorithms 2 and 3, write-delay and
preload selection, the adaptive monitoring period, the runtime
pattern-change triggers, and the :class:`EnergyEfficientPolicy` manager
tying them together (Algorithm 1).
"""

from repro.core.cache_policy import (
    select_preload_items,
    select_write_delay_items,
)
from repro.core.hotcold import HotColdSplit, determine_hot_cold
from repro.core.intervals import (
    Interval,
    IOSequence,
    ItemActivity,
    activity_from_records,
    extract_activity,
)
from repro.core.manager import EnergyEfficientPolicy, ManagementSnapshot
from repro.core.patterns import (
    IOPattern,
    ItemProfile,
    build_profiles,
    classify,
    pattern_counts,
    pattern_fractions,
)
from repro.core.period import next_monitoring_period
from repro.core.placement import determine_placement
from repro.core.triggers import PatternChangeTriggers, TriggerResult

__all__ = [
    "EnergyEfficientPolicy",
    "HotColdSplit",
    "IOPattern",
    "IOSequence",
    "Interval",
    "ItemActivity",
    "ItemProfile",
    "ManagementSnapshot",
    "PatternChangeTriggers",
    "TriggerResult",
    "activity_from_records",
    "build_profiles",
    "classify",
    "determine_hot_cold",
    "determine_placement",
    "extract_activity",
    "next_monitoring_period",
    "pattern_counts",
    "pattern_fractions",
    "select_preload_items",
    "select_write_delay_items",
]
