"""Runtime invariant auditor for simulation runs.

The energy numbers the experiments report are integrals accumulated over
hundreds of thousands of events; a single accounting slip (a state
interval charged twice, a capacity counter that drifts) corrupts them
*silently*.  :class:`InvariantAuditor` is the opt-in defence: it hooks
the :class:`~repro.engine.kernel.SimulationKernel` (via
:meth:`InvariantAuditor.hook`) so :meth:`InvariantAuditor.check` runs
after every policy checkpoint and once at the end of the run, and the
auditor re-derives the books from first principles:

* **Energy conservation** — each enclosure's per-state joules must equal
  ``watts(state) × time_in_state(state)``, per-state times must sum to
  the settled clock, and the :class:`~repro.storage.meter.PowerMeter`
  reading must equal the independent per-enclosure/controller
  recomputation.
* **Capacity accounting** — cache partitions within their byte budgets,
  and every enclosure's used-byte counter equal to the sum of the item
  sizes placed on it (and within declared capacity).
* **Monotonic time** — audit time, and every enclosure's settled clock,
  never move backwards.
* **Fault discipline** (:mod:`repro.faults`) — acknowledged writes are
  conserved (every page absorbed into write-delay is either still dirty
  or was flushed: ``absorbed == flushed + dirty``, exact integers), no
  physical I/O started service inside an injected outage window, and
  after a cache-battery failure no acknowledged dirty data lingers in
  the write-delay partition.
* **Action-log consistency** (:mod:`repro.actions`) — what the
  executor's log claims was applied never exceeds what the controller's
  own books measured (migration counts and bytes), and the log length
  matches the executor's outcome counters.
* **Tier conservation** (:mod:`repro.storage.tiers`) — per tier, the
  byte ledger's ``bytes_in − bytes_out`` equals the bytes currently
  placed on the tier's devices (primaries plus replicas, exact
  integers), per-kind tier-move counters never exceed the controller's
  books, and no archived copy has served physical I/O without a
  promote record in the action log.

Any violation raises :class:`~repro.errors.AuditError` whose message
embeds a dump of the violating state.  Overhead is one settle + O(items)
bookkeeping pass per monitoring period — negligible next to replay
itself (see ``docs/devtools.md``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import AuditError
from repro.simulation import SimulationContext
from repro.storage.cache import PAGE_BYTES
from repro.storage.power import PowerState
from repro.units import format_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.kernel import SimulationKernel

__all__ = ["InvariantAuditor"]


class InvariantAuditor:
    """Checks simulation invariants each monitoring period.

    Parameters
    ----------
    context:
        The wired-up simulation under test.
    rel_tol / abs_tol:
        Tolerances for energy comparisons.  Energy is accumulated by
        summation over many intervals, so exact equality is not expected;
        the defaults allow normal float round-off while catching any
        real accounting error (which shows up in whole joules).
    """

    def __init__(
        self,
        context: SimulationContext,
        rel_tol: float = 1e-9,
        abs_tol: float = 1e-6,
    ) -> None:
        self.context = context
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        self.checks_run = 0
        self._last_now = 0.0
        self._last_clock: dict[str, float] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def hook(self, kernel: "SimulationKernel") -> None:
        """Attach this auditor to a simulation kernel.

        The kernel calls :meth:`check` after every policy checkpoint
        (once per monitoring period) and once at final settlement — the
        same cadence the pre-kernel replayer hand-wired.
        """
        kernel.add_checkpoint_hook(self.check)
        kernel.add_finish_hook(self.check)

    def check(self, now: float) -> None:
        """Audit every invariant at virtual time ``now``.

        Raises :class:`AuditError` listing all violations found, with a
        state dump appended.  Settles enclosure timelines to ``now`` (a
        no-op for enclosures already past it).
        """
        problems: list[str] = []
        self._check_monotonic_time(now, problems)
        self._check_energy_conservation(now, problems)
        self._check_capacity(problems)
        self._check_faults(now, problems)
        self._check_actions(problems)
        self._check_tiers(problems)
        self.checks_run += 1
        self._last_now = max(self._last_now, now)
        for enclosure in self.context.enclosures:
            self._last_clock[enclosure.name] = enclosure.clock
        if problems:
            details = "\n".join(f"  - {p}" for p in problems)
            raise AuditError(
                f"{len(problems)} invariant violation(s) at t={now:.3f}s:\n"
                f"{details}\n{self.snapshot(now)}"
            )

    def snapshot_state(self) -> dict:
        """Serializable audit cursors (:mod:`repro.persistence`).

        Restoring these keeps the monotonic-time checks armed *across*
        a resume seam: a restored run that somehow rewound an enclosure
        clock would fail the audit exactly as the uninterrupted run
        would.
        """
        return {
            "checks_run": self.checks_run,
            "last_now": self._last_now,
            "last_clock": dict(self._last_clock),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the cursors exactly as :meth:`snapshot_state` captured them."""
        self.checks_run = state["checks_run"]
        self._last_now = state["last_now"]
        self._last_clock = dict(state["last_clock"])

    def snapshot(self, now: float) -> str:
        """Dump of the audited state, embedded in audit failures."""
        ctx = self.context
        lines = [f"state dump at t={now:.3f}s:"]
        for enc in ctx.enclosures:
            lines.append(
                f"  {enc.name}: state={enc.state.value} "
                f"clock={enc.clock:.3f}s energy={enc.energy_joules():.3f}J "
                f"ios={enc.io_count} spin-ups={enc.spin_up_count}"
            )
        cache = ctx.cache
        lines.append(
            "  cache: "
            f"preload {format_bytes(cache.preload.used_bytes)}/"
            f"{format_bytes(cache.preload.capacity_bytes)}, "
            f"write-delay {cache.write_delay.dirty_pages}/"
            f"{cache.write_delay.capacity_pages} pages dirty, "
            f"lru {len(cache.lru)}/{cache.lru.capacity_pages} pages"
        )
        for name in ctx.virtualization.enclosure_names:
            used = ctx.virtualization.used_bytes(name)
            lines.append(f"  placement {name}: used {format_bytes(used)}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # individual invariants
    # ------------------------------------------------------------------
    def _close(self, a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=self.rel_tol, abs_tol=self.abs_tol)

    def _check_monotonic_time(self, now: float, problems: list[str]) -> None:
        if now < self._last_now - self.abs_tol:
            problems.append(
                f"audit time moved backwards: {now:.6f}s after "
                f"{self._last_now:.6f}s"
            )
        for enc in self.context.enclosures:
            previous = self._last_clock.get(enc.name)
            if previous is not None and enc.clock < previous - self.abs_tol:
                problems.append(
                    f"{enc.name}: settled clock moved backwards "
                    f"({enc.clock:.6f}s after {previous:.6f}s)"
                )

    def _check_energy_conservation(
        self, now: float, problems: list[str]
    ) -> None:
        ctx = self.context
        expected_total = 0.0
        for enc in ctx.enclosures:
            enc.settle(now)
            state_sum = 0.0
            for state in PowerState:
                joules = enc.energy_joules(state)
                seconds = enc.time_in_state(state)
                recomputed = enc.power_model.watts(state) * seconds
                state_sum += joules
                if joules < -self.abs_tol or seconds < -self.abs_tol:
                    problems.append(
                        f"{enc.name}: negative accounting in {state.value} "
                        f"({joules:.6f}J over {seconds:.6f}s)"
                    )
                elif not self._close(joules, recomputed):
                    problems.append(
                        f"{enc.name}: {state.value} energy {joules:.6f}J "
                        f"!= watts x time = {recomputed:.6f}J"
                    )
            occupancy = sum(enc.time_in_state(s) for s in PowerState)
            if not self._close(occupancy, enc.clock):
                problems.append(
                    f"{enc.name}: state occupancies sum to {occupancy:.6f}s "
                    f"but clock is {enc.clock:.6f}s"
                )
            expected_total += enc.energy_joules()
        if now <= 0:
            return
        reading = ctx.meter.read(now, ctx.controller)
        if not self._close(reading.enclosure_joules, expected_total):
            problems.append(
                "power meter disagrees with per-enclosure energy: metered "
                f"{reading.enclosure_joules:.6f}J, "
                f"summed {expected_total:.6f}J"
            )
        model = ctx.meter.controller_model
        recomputed = model.energy(now, ctx.controller.logical_io_count)
        if not self._close(reading.controller_joules, recomputed):
            problems.append(
                "power meter disagrees with controller model: metered "
                f"{reading.controller_joules:.6f}J, "
                f"recomputed {recomputed:.6f}J"
            )

    def _check_capacity(self, problems: list[str]) -> None:
        ctx = self.context
        preload = ctx.cache.preload
        if not 0 <= preload.used_bytes <= preload.capacity_bytes:
            problems.append(
                f"preload partition out of budget: used {preload.used_bytes} "
                f"of {preload.capacity_bytes} bytes"
            )
        delay = ctx.cache.write_delay
        if delay.dirty_pages < 0 or (
            delay.capacity_pages and delay.dirty_pages > delay.capacity_pages
        ):
            problems.append(
                f"write-delay partition overflow: {delay.dirty_pages} dirty "
                f"pages of {delay.capacity_pages} "
                f"({PAGE_BYTES} bytes per page)"
            )
        lru = ctx.cache.lru
        if lru.capacity_pages and len(lru) > lru.capacity_pages:
            problems.append(
                f"LRU cache overflow: {len(lru)} pages of {lru.capacity_pages}"
            )
        virt = ctx.virtualization
        for name in virt.enclosure_names:
            used = virt.used_bytes(name)
            recomputed = sum(
                virt.item_size(item) for item in virt.items_on(name)
            )
            if used != recomputed:
                problems.append(
                    f"placement accounting drift on {name}: counter says "
                    f"{used} bytes, items sum to {recomputed} bytes"
                )
            capacity = virt.enclosure(name).capacity_bytes
            if used < 0 or (capacity and used > capacity):
                problems.append(
                    f"enclosure {name} over capacity: {used} of "
                    f"{capacity} bytes"
                )

    def _check_faults(self, now: float, problems: list[str]) -> None:
        ctx = self.context
        # Acknowledged-write conservation holds with or without a fault
        # clock: every page ever absorbed into the write-delay partition
        # is either still dirty or was flushed to disk.  Exact integer
        # identity — any slip here means an acknowledged write vanished
        # (or was flushed twice).
        delay = ctx.cache.write_delay
        if delay.absorbed_pages != delay.flushed_pages + delay.dirty_pages:
            problems.append(
                "acknowledged-write conservation broken: absorbed "
                f"{delay.absorbed_pages} pages != flushed "
                f"{delay.flushed_pages} + dirty {delay.dirty_pages}"
            )
        clock = ctx.fault_clock
        if clock is None:
            return
        # No physical I/O may start service inside an injected outage
        # window; the enclosures record any slip as a violation.
        for violation in clock.outage_violations:
            problems.append(f"I/O served during outage: {violation}")
        # After a cache-battery failure the controller must have
        # force-flushed every acknowledged dirty page: battery-less
        # write-delay data would be lost on a power event.
        if ctx.controller.battery_failed and delay.dirty_pages:
            problems.append(
                "cache battery failed at "
                f"t={clock.battery_failure_time:.3f}s but "
                f"{delay.dirty_pages} dirty page(s) still sit in the "
                "write-delay partition at "
                f"t={now:.3f}s (acknowledged writes at risk)"
            )

    def _check_actions(self, problems: list[str]) -> None:
        ctx = self.context
        executor = ctx.executor
        if executor is None:
            return
        controller = ctx.controller
        # One-directional bounds: the controller also serves paths the
        # executor does not originate (DDR block charges predating the
        # context executor, tail flushes), so "<=" is the invariant —
        # the log may under-claim, never over-claim.
        if executor.migrations_applied > controller.migration_count:
            problems.append(
                "action log claims more migrations than the controller "
                f"performed: {executor.migrations_applied} applied vs "
                f"{controller.migration_count} counted"
            )
        if executor.migrated_bytes_applied > controller.migrated_bytes:
            problems.append(
                "action log claims more migrated bytes than the "
                f"controller moved: {executor.migrated_bytes_applied} vs "
                f"{controller.migrated_bytes}"
            )
        outcome_total = (
            executor.actions_applied
            + executor.actions_aborted
            + executor.actions_vetoed
            + executor.actions_rejected
        )
        if executor.record_log and len(executor.log) != outcome_total:
            problems.append(
                f"action log length {len(executor.log)} disagrees with "
                f"outcome counters summing to {outcome_total}"
            )

    def _check_tiers(self, problems: list[str]) -> None:
        ctx = self.context
        virt = ctx.virtualization
        ledger = virt.tier_ledger
        # Per-tier byte conservation: what the ledger says flowed in and
        # never left must equal what is placed there right now.  All
        # integer arithmetic, so this is an *exact* identity even on a
        # legacy single-tier context (where it degenerates to "the one
        # HDD tier holds every byte ever added and not removed").
        for tier in virt.tiers():
            placed = sum(
                virt.used_bytes(device) + virt.replica_bytes_on(device)
                for device in tier.devices
            )
            net = ledger.net_bytes(tier.name)
            if placed != net:
                problems.append(
                    f"tier {tier.name} byte conservation broken: ledger "
                    f"net {net} bytes, devices hold {placed} bytes"
                )
        executor = ctx.executor
        if executor is None:
            return
        controller = ctx.controller
        # Same one-directional bound as migrations: the log may
        # under-claim tier moves, never over-claim them.
        bounds = (
            ("promotes", executor.promotes_applied, controller.promotion_count),
            ("demotes", executor.demotes_applied, controller.demotion_count),
            (
                "archive moves",
                executor.archives_applied,
                controller.archive_move_count,
            ),
            (
                "replications",
                executor.replicates_applied,
                controller.replication_count,
            ),
        )
        for label, claimed, counted in bounds:
            if claimed > counted:
                problems.append(
                    f"action log claims more {label} than the controller "
                    f"performed: {claimed} applied vs {counted} counted"
                )
        # No service from an archived copy without a promote record:
        # every item the controller marked as served-from-archive must
        # appear in some PromoteItem record (whatever its outcome — a
        # capacity-rejected promote is still an auditable decision).
        unpromoted = sorted(
            controller.archive_serviced_items
            - executor.promote_attempt_items
        )
        if unpromoted:
            problems.append(
                "archived copies served I/O with no promote record: "
                + ", ".join(unpromoted)
            )
