"""Pass 1 of the analyzer: whole-program symbol table and call graph.

:func:`index_paths` parses every Python file under the given roots into
a :class:`Program`: per-module import tables, every function/method with
its parameter and return annotation *strings*, every class with its
resolved base chain, annotated attributes, and properties, plus one
:class:`CallSite` per call expression.  Checkers (pass 2) run per module
but resolve names *through* the program — that is what makes the
dimensional and purity analyses interprocedural rather than per-file.

Module names are recovered from the filesystem: a file's dotted name is
built by walking up through parent directories that contain an
``__init__.py`` (``src/repro/storage/meter.py`` → ``repro.storage.meter``),
so absolute imports inside the analyzed tree resolve to indexed modules
without any sys.path games.

Everything is best-effort static resolution: an unresolvable name simply
resolves to ``None`` and checkers stay silent about it — the analyses
prefer missed findings over false alarms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ValidationError

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleIndex",
    "Program",
    "index_paths",
    "iter_python_files",
    "module_name_for",
]

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub
        elif path.is_file():
            yield path
        else:
            raise ValidationError(f"no such file or directory: {path}")


def module_name_for(path: Path) -> str:
    """Dotted module name recovered from package ``__init__.py`` markers."""
    resolved = path.resolve()
    parts = [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [resolved.parent.name]
    return ".".join(reversed(parts))


def _annotation_text(node: ast.expr | None) -> str | None:
    """Annotation as source text, unwrapping ``Optional``/``| None``/quotes."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return node.value
    # X | None  /  None | X
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_text(node.left)
        right = _annotation_text(node.right)
        if left == "None":
            return right
        if right == "None":
            return left
    # Optional[X]
    if isinstance(node, ast.Subscript):
        base = _terminal_name(node.value)
        if base == "Optional":
            return _annotation_text(node.slice)
        if base == "Final":
            return _annotation_text(node.slice)
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - malformed tree
        return None


def _terminal_name(node: ast.AST) -> str:
    """Last dotted component of a name-like expression, else ``''``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return ""


def annotation_terminal(text: str | None) -> str | None:
    """Terminal identifier of an annotation string (``units.Seconds`` → ``Seconds``)."""
    if not text:
        return None
    head = text.split("[", 1)[0].strip()
    return head.rsplit(".", 1)[-1] or None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: Terminal attribute/function name being called (``migrate_item``).
    method: str
    #: Receiver expression for method calls, ``None`` for bare names.
    receiver: ast.expr | None


@dataclass
class FunctionInfo:
    """One function or method in the indexed program."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Parameter name → annotation text (``None`` when unannotated),
    #: excluding ``self``/``cls`` on methods.
    params: dict[str, str | None]
    returns: str | None
    class_name: str | None = None
    is_property: bool = False
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Bare function name (last qualname component)."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition in the indexed program."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    #: Base-class expressions as written (``PowerPolicy``, ``abc.ABC``).
    bases: list[str]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Attribute/field name → annotation text (class-level ``AnnAssign``
    #: plus annotated/inferred ``self.x = ...`` in ``__init__``).
    attributes: dict[str, str] = field(default_factory=dict)
    #: Property name → return annotation text.
    properties: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Bare class name (last qualname component)."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleIndex:
    """Everything pass 1 learned about one module."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: Local name → fully-qualified imported name (``Path`` →
    #: ``pathlib.Path``; ``units`` → ``repro.units``).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level variable → annotation text.
    variables: dict[str, str] = field(default_factory=dict)


class Program:
    """The indexed program: pass-1 output, shared by every checker."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleIndex] = {}
        #: Every function/method by fully-qualified name.
        self.functions: dict[str, FunctionInfo] = {}
        #: Every class by fully-qualified name.
        self.classes: dict[str, ClassInfo] = {}
        #: Bare class name → classes carrying it (fallback resolution).
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: Files that failed to parse: path → error message.
        self.parse_errors: dict[str, str] = {}

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_name(self, module: ModuleIndex, dotted: str) -> str | None:
        """Fully-qualified name for ``dotted`` as seen from ``module``."""
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        local = f"{module.name}.{dotted}"
        if local in self.functions or local in self.classes:
            return local
        if dotted in self.functions or dotted in self.classes:
            return dotted
        return None

    def resolve_class(
        self, module: ModuleIndex, annotation: str | None
    ) -> ClassInfo | None:
        """Class named by an annotation string, resolved from ``module``."""
        if not annotation:
            return None
        dotted = annotation.split("[", 1)[0].strip()
        if not dotted or dotted in ("None", "Any"):
            return None
        full = self.resolve_name(module, dotted)
        if full is not None and full in self.classes:
            return self.classes[full]
        candidates = self.classes_by_name.get(dotted.rsplit(".", 1)[-1], [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_method(
        self, cls: ClassInfo, name: str
    ) -> FunctionInfo | None:
        """Look up ``name`` on ``cls`` and then up its resolved base chain."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            module = self.modules.get(current.module)
            for base in current.bases:
                resolved = None
                if module is not None:
                    full = self.resolve_name(module, base)
                    if full is not None:
                        resolved = self.classes.get(full)
                if resolved is None:
                    candidates = self.classes_by_name.get(
                        base.rsplit(".", 1)[-1], []
                    )
                    if len(candidates) == 1:
                        resolved = candidates[0]
                if resolved is not None:
                    queue.append(resolved)
        return None

    def class_attribute(self, cls: ClassInfo, name: str) -> str | None:
        """Annotation text of attribute/property ``name``, following bases."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.attributes:
                return current.attributes[name]
            if name in current.properties:
                return current.properties[name]
            module = self.modules.get(current.module)
            if module is not None:
                for base in current.bases:
                    full = self.resolve_name(module, base)
                    if full is not None and full in self.classes:
                        queue.append(self.classes[full])
        return None

    def inherits_from(self, cls: ClassInfo, base_name: str) -> bool:
        """Whether ``cls`` has a (transitive) base whose bare name matches."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            module = self.modules.get(current.module)
            for base in current.bases:
                if base.rsplit(".", 1)[-1] == base_name:
                    return True
                if module is not None:
                    full = self.resolve_name(module, base)
                    if full is not None and full in self.classes:
                        queue.append(self.classes[full])
        return False


def _collect_calls(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[CallSite]:
    calls: list[CallSite] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            calls.append(
                CallSite(node=node, method=node.func.attr, receiver=node.func.value)
            )
        elif isinstance(node.func, ast.Name):
            calls.append(CallSite(node=node, method=node.func.id, receiver=None))
    return calls


def _index_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleIndex,
    class_name: str | None,
) -> FunctionInfo:
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    if class_name is not None and positional and not any(
        _terminal_name(dec) == "staticmethod" for dec in node.decorator_list
    ):
        positional = positional[1:]  # self / cls
    params: dict[str, str | None] = {}
    for arg in [*positional, *args.kwonlyargs]:
        params[arg.arg] = _annotation_text(arg.annotation)
    prefix = f"{module.name}.{class_name}." if class_name else f"{module.name}."
    return FunctionInfo(
        qualname=prefix + node.name,
        module=module.name,
        path=module.path,
        node=node,
        params=params,
        returns=_annotation_text(node.returns),
        class_name=class_name,
        is_property=any(
            _terminal_name(dec) in ("property", "cached_property")
            for dec in node.decorator_list
        ),
        calls=_collect_calls(node),
    )


def _index_class(node: ast.ClassDef, module: ModuleIndex) -> ClassInfo:
    info = ClassInfo(
        qualname=f"{module.name}.{node.name}",
        module=module.name,
        path=module.path,
        node=node,
        bases=[b for b in (_annotation_text(base) for base in node.bases) if b],
    )
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _index_function(child, module, node.name)
            info.methods[child.name] = fn
            if fn.is_property and fn.returns:
                info.properties[child.name] = fn.returns
        elif isinstance(child, ast.AnnAssign) and isinstance(
            child.target, ast.Name
        ):
            text = _annotation_text(child.annotation)
            if text:
                info.attributes[child.target.id] = text
    _index_instance_attributes(info)
    return info


def _index_instance_attributes(info: ClassInfo) -> None:
    """Record ``self.x`` annotations/constructor types from ``__init__``."""
    init = info.methods.get("__init__")
    if init is None:
        return
    for node in ast.walk(init.node):
        if isinstance(node, ast.AnnAssign):
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in info.attributes
            ):
                text = _annotation_text(node.annotation)
                if text:
                    info.attributes[target.attr] = text
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = _terminal_name(node.value.func)
            if not callee or not callee[:1].isupper():
                continue  # heuristics: constructor calls are CamelCase
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in info.attributes
                ):
                    info.attributes[target.attr] = callee
        elif isinstance(node, ast.Assign):
            # ``self.x = param`` where the parameter is annotated.
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Name)
                    and target.attr not in info.attributes
                ):
                    text = init.params.get(node.value.id)
                    if text:
                        info.attributes[target.attr] = text


def _index_imports(tree: ast.Module, index: ModuleIndex) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                index.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: anchor at this package
                parts = index.name.split(".")
                anchor = parts[: len(parts) - node.level]
                base = ".".join([*anchor, node.module] if node.module else anchor)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                index.imports[local] = f"{base}.{alias.name}" if base else alias.name


def index_module(path: Path, program: Program) -> ModuleIndex | None:
    """Index one file into ``program``; returns ``None`` on a parse error."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        program.parse_errors[str(path)] = f"line {exc.lineno}: {exc.msg}"
        return None
    index = ModuleIndex(
        name=module_name_for(path),
        path=Path(path).as_posix(),
        tree=tree,
        source=source,
    )
    _index_imports(tree, index)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _index_function(node, index, None)
            index.functions[node.name] = fn
            program.functions[fn.qualname] = fn
        elif isinstance(node, ast.ClassDef):
            cls = _index_class(node, index)
            index.classes[node.name] = cls
            program.classes[cls.qualname] = cls
            program.classes_by_name.setdefault(cls.name, []).append(cls)
            for method in cls.methods.values():
                program.functions[method.qualname] = method
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            text = _annotation_text(node.annotation)
            if text:
                index.variables[node.target.id] = text
    program.modules[index.name] = index
    return index


def index_paths(paths: Iterable[str | Path]) -> Program:
    """Pass 1: build the whole-program index for every file under ``paths``."""
    program = Program()
    for path in iter_python_files(paths):
        index_module(path, program)
    return program
