"""Checker registration: importing this module arms every built-in check.

Kept separate from :mod:`repro.devtools.analysis.framework` so the
registry import has no side-effect cycles: the framework defines the
registry, the checker modules populate it when imported, and this module
is the single place that imports them all.
"""

from __future__ import annotations

# Importing for the @register_checker side effect.
from repro.devtools.analysis import (  # noqa: F401
    determinism,
    dimensions,
    snapshots,
)

__all__: list[str] = []
