"""Pass 2 scaffolding: checkers, findings, suppressions, reports.

A :class:`Checker` runs over one indexed module at a time but sees the
whole :class:`~repro.devtools.analysis.symbols.Program`, so its checks
can follow calls and attribute types across module boundaries.  Each
problem it yields is a :class:`Finding` carrying a stable *check id*
(``D101`` …), the source location, and the enclosing definition's
qualified name — the latter is what the committed baseline keys on, so
baselined findings survive unrelated line drift.

A finding is silenced by a trailing comment on its line::

    started = time.perf_counter()  # analysis: ignore[D203]
    started = time.perf_counter()  # analysis: ignore        (all checks)

Suppressions accept check ids (``D203``) and checker names
(``wall-clock``), mirroring the lint suppression grammar.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ValidationError
from repro.devtools.analysis.symbols import ModuleIndex, Program

__all__ = [
    "AnalysisReport",
    "CHECKERS",
    "Checker",
    "Finding",
    "register_checker",
    "resolve_checkers",
    "run_checkers",
]

_SUPPRESSION = re.compile(
    r"#\s*analysis:\s*ignore(?:\[(?P<checks>[^\]]*)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One analysis finding at a source location."""

    check_id: str
    check_name: str
    path: str
    line: int
    col: int
    #: Qualified name of the enclosing function/class ("" at module level).
    context: str
    message: str

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: D101[...] …``."""
        where = f" [{self.context}]" if self.context else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.check_id}[{self.check_name}]{where} {self.message}"
        )

    def baseline_key(self) -> dict[str, str]:
        """Line-independent identity used by the committed baseline."""
        return {
            "check": self.check_id,
            "path": self.path,
            "context": self.context,
            "message": self.message,
        }


class Checker:
    """Base class: one registered whole-program checker.

    ``check_ids`` maps every id the checker may emit to a short
    kebab-case name; both address the checker in ``--select`` and in
    suppression comments.
    """

    #: Check id → name for every finding kind this checker emits.
    check_ids: dict[str, str] = {}

    def check_module(
        self, module: ModuleIndex, program: Program
    ) -> Iterator[Finding]:
        """Yield every finding for ``module``, resolving through ``program``."""
        raise NotImplementedError

    def finding(
        self,
        check_id: str,
        module: ModuleIndex,
        node: object,
        context: str,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` anchored at an AST ``node``."""
        return Finding(
            check_id=check_id,
            check_name=self.check_ids[check_id],
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            context=context,
            message=message,
        )


#: Registry of all checkers, in registration order.
CHECKERS: list[Checker] = []


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator: instantiate and register a checker."""
    instance = cls()
    for existing in CHECKERS:
        overlap = set(existing.check_ids) & set(instance.check_ids)
        if overlap:
            raise ValidationError(
                f"duplicate check ids {sorted(overlap)} in {cls.__name__}"
            )
    CHECKERS.append(instance)
    return cls


def resolve_checkers(selectors: list[str] | None = None) -> list[Checker]:
    """Checkers matching ``selectors`` (ids or names); all by default."""
    if not selectors:
        return list(CHECKERS)
    chosen: list[Checker] = []
    known: set[str] = set()
    for checker in CHECKERS:
        known.update(checker.check_ids)
        known.update(checker.check_ids.values())
    for selector in selectors:
        if selector.upper() not in known and selector.lower() not in known:
            raise ValidationError(
                f"unknown check {selector!r} (known: {', '.join(sorted(known))})"
            )
    for checker in CHECKERS:
        keys = {k.lower() for k in checker.check_ids}
        keys |= set(checker.check_ids.values())
        if any(s.lower() in keys for s in selectors):
            chosen.append(checker)
    return chosen


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Map line number → suppressed check keys (``None`` = all checks)."""
    table: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        spec = match.group("checks")
        if spec is None:
            table[lineno] = None
        else:
            table[lineno] = {
                part.strip().lower() for part in spec.split(",") if part.strip()
            }
    return table


def _is_suppressed(
    finding: Finding, table: dict[int, set[str] | None]
) -> bool:
    if finding.line not in table:
        return False
    checks = table[finding.line]
    if checks is None:
        return True
    return finding.check_id.lower() in checks or finding.check_name in checks


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: tuple[Finding, ...]
    files_indexed: int
    #: Findings filtered out by the committed baseline.
    baselined: tuple[Finding, ...] = ()
    #: Files that failed to parse: path → message.
    parse_errors: dict[str, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """Whether no *new* (unbaselined) findings survived suppression."""
        return not self.findings and not self.parse_errors

    def render_text(self) -> str:
        """The default human-readable report."""
        lines = [f.render() for f in self.findings]
        for path, message in sorted(self.parse_errors.items()):
            lines.append(f"{path}:1:0: E0[parse-error] {message}")
        noun = "file" if self.files_indexed == 1 else "files"
        tail = f"{self.files_indexed} {noun} analyzed"
        if self.baselined:
            tail += f", {len(self.baselined)} baselined finding(s) suppressed"
        if self.findings or self.parse_errors:
            count = len(self.findings) + len(self.parse_errors)
            lines.append(f"{count} new finding(s); {tail}")
        else:
            lines.append(f"clean: {tail}")
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report for CI artifact upload."""
        def flat(finding: Finding) -> dict[str, object]:
            return {
                "check_id": finding.check_id,
                "check_name": finding.check_name,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "context": finding.context,
                "message": finding.message,
            }

        return json.dumps(
            {
                "files_indexed": self.files_indexed,
                "new_findings": [flat(f) for f in self.findings],
                "baselined_findings": [flat(f) for f in self.baselined],
                "parse_errors": self.parse_errors,
            },
            indent=2,
        )


def run_checkers(
    program: Program, checkers: list[Checker] | None = None
) -> list[Finding]:
    """Run pass 2 over every indexed module; returns surviving findings."""
    chosen = checkers if checkers is not None else list(CHECKERS)
    findings: list[Finding] = []
    for name in sorted(program.modules):
        module = program.modules[name]
        table = _suppressions(module.source)
        for checker in chosen:
            for finding in checker.check_module(module, program):
                if not _is_suppressed(finding, table):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.check_id))
    return findings
