"""Whole-program static analysis: dimensional consistency and determinism.

Where :mod:`repro.devtools.lint` checks one file at a time,
this package analyses the *program*: pass 1
(:mod:`~repro.devtools.analysis.symbols`) indexes every module under the
given roots into a symbol table and call graph, pass 2
(:mod:`~repro.devtools.analysis.framework`) runs registered checkers
that resolve names, attribute types, and calls through that index.

Built-in checkers:

* **D1 — dimensional consistency**
  (:mod:`~repro.devtools.analysis.dimensions`, D101–D104): propagates
  the :mod:`repro.units` dimension aliases (``Seconds``, ``Joules``,
  ``Watts``, ``Bytes``, ``Rate``) through assignments, calls, and
  attribute reads, and flags mixed-dimension arithmetic, comparisons,
  returns, and arguments.
* **D2 — planner purity & determinism**
  (:mod:`~repro.devtools.analysis.determinism`, D201–D204): proves
  policy checkpoint/trigger paths reach storage mutation only via
  ``ActionExecutor.apply`` (closing lint rule R9's transitive-call
  hole), and flags unseeded :mod:`random`, wall-clock reads, and
  unordered ``set`` iteration feeding ordering-sensitive sinks.
* **D205 — snapshot protocol**
  (:mod:`~repro.devtools.analysis.snapshots`): flags policy classes
  whose mutable state is invisible to :mod:`repro.persistence` —
  ``self`` attributes grown outside construction without a matching
  ``snapshot_state``/``restore_state`` pair, and half-implemented
  protocol pairs.

Run it as ``ecostor analyze`` or ``python -m repro.devtools.analysis``;
findings are silenced inline (``# analysis: ignore[D203]``) or
grandfathered in the committed ``analysis-baseline.json``
(:mod:`~repro.devtools.analysis.baseline`).  See ``docs/analysis.md``.
"""

from typing import Any

__all__ = [
    "AnalysisReport",
    "CHECKERS",
    "Checker",
    "Finding",
    "Program",
    "analyze_paths",
    "index_paths",
    "main",
]

#: Lazy attribute → defining submodule, mirroring :mod:`repro.devtools`.
_EXPORTS = {
    "AnalysisReport": "repro.devtools.analysis.framework",
    "CHECKERS": "repro.devtools.analysis.framework",
    "Checker": "repro.devtools.analysis.framework",
    "Finding": "repro.devtools.analysis.framework",
    "Program": "repro.devtools.analysis.symbols",
    "analyze_paths": "repro.devtools.analysis.cli",
    "index_paths": "repro.devtools.analysis.symbols",
    "main": "repro.devtools.analysis.cli",
}


def __getattr__(name: str) -> Any:
    """Import the submodule backing ``name`` on first access."""
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        if name == "CHECKERS":
            # Accessing the registry arms the built-in checkers first.
            importlib.import_module("repro.devtools.analysis.checks")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
