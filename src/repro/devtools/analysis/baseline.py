"""Committed-baseline support for the analyzer.

A baseline file grandfathers known findings so that ``ecostor analyze``
can gate CI on *new* findings only: every entry is the line-independent
identity of one accepted finding (check id, file path, enclosing
definition, message) plus a count, so a finding survives unrelated line
drift but re-fires the moment its code is touched in a way that changes
the message or multiplies occurrences.

Workflow::

    ecostor analyze src/repro                       # fails on new findings
    ecostor analyze src/repro --write-baseline      # accept current state
    git add analysis-baseline.json                  # grandfather them

Entries for findings that no longer occur are dropped on the next
``--write-baseline``, so the file only shrinks as debt is paid down.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ValidationError
from repro.devtools.analysis.framework import Finding

__all__ = [
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE",
    "load_baseline",
    "partition_findings",
    "write_baseline",
]

#: Version tag inside the baseline document.
BASELINE_FORMAT = 1

#: Default baseline filename, looked up in the working directory.
DEFAULT_BASELINE = "analysis-baseline.json"


def _normalize(path_text: str) -> str:
    """Absolute form of a finding/entry path for identity comparison.

    The committed baseline stores paths relative to the repository root
    (where ``ecostor analyze`` is run from), while callers may hand the
    analyzer absolute paths; resolving both sides against the working
    directory makes the two spellings meet.
    """
    try:
        return str(Path(path_text).resolve())
    except OSError:  # pragma: no cover - unresolvable path
        return str(Path(path_text))


def _key(entry: dict[str, str]) -> tuple[str, str, str, str]:
    return (
        entry["check"],
        _normalize(entry["path"]),
        entry["context"],
        entry["message"],
    )


def load_baseline(path: str | Path) -> dict[tuple[str, str, str, str], int]:
    """Load a baseline file into an identity → allowed-count table."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or "entries" not in document:
        raise ValidationError(
            f"baseline {path} is not an analyzer baseline document"
        )
    table: dict[tuple[str, str, str, str], int] = {}
    for entry in document["entries"]:
        try:
            table[_key(entry)] = int(entry.get("count", 1))
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"baseline {path} has a malformed entry: {entry!r}"
            ) from exc
    return table


def partition_findings(
    findings: list[Finding],
    baseline: dict[tuple[str, str, str, str], int] | None,
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined) against the allowed counts."""
    if not baseline:
        return list(findings), []
    remaining = dict(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = _key(finding.baseline_key())
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


def write_baseline(findings: list[Finding], path: str | Path) -> int:
    """Write all current findings as the new baseline; returns entry count.

    Entry paths are stored as the analyzer reported them, so running
    ``ecostor analyze src/repro --write-baseline`` from the repository
    root keeps the committed document free of absolute checkout paths.
    """
    counts: dict[tuple[str, str, str, str], int] = {}
    reported: dict[tuple[str, str, str, str], str] = {}
    for finding in findings:
        key = _key(finding.baseline_key())
        counts[key] = counts.get(key, 0) + 1
        reported.setdefault(key, finding.path)
    entries = [
        {
            "check": check,
            "path": reported[(check, file_path, context, message)],
            "context": context,
            "message": message,
            "count": count,
        }
        for (check, file_path, context, message), count in sorted(counts.items())
    ]
    document = {
        "format": BASELINE_FORMAT,
        "tool": "ecostor analyze",
        "entries": entries,
    }
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)
