"""Analyzer entry points: ``python -m repro.devtools.analysis`` / ``ecostor analyze``.

Runs both passes (index, then checkers) over the given trees::

    python -m repro.devtools.analysis src/repro
    ecostor analyze src/repro --format json
    ecostor analyze src/repro --select D101 D202
    ecostor analyze src/repro --write-baseline

Exit status is 0 when no *new* findings survived the baseline and
suppression filters, 1 when new findings were reported, 2 on usage
errors (unknown check, unreadable path or baseline).  The committed
``analysis-baseline.json`` at the repository root is applied
automatically when present; ``--no-baseline`` ignores it and
``--write-baseline`` regenerates it from the current findings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import ValidationError
from repro.devtools.analysis import checks  # noqa: F401  (registers checkers)
from repro.devtools.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.devtools.analysis.framework import (
    CHECKERS,
    AnalysisReport,
    resolve_checkers,
    run_checkers,
)
from repro.devtools.analysis.symbols import index_paths

__all__ = ["analyze_paths", "build_parser", "main"]


def analyze_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    baseline_path: str | Path | None = None,
) -> AnalysisReport:
    """Run the full analysis over ``paths`` and apply the baseline filter."""
    program = index_paths(paths)
    checkers = resolve_checkers(list(select) if select else None)
    findings = run_checkers(program, checkers)
    baseline = None
    if baseline_path is not None and Path(baseline_path).exists():
        baseline = load_baseline(baseline_path)
    new, grandfathered = partition_findings(findings, baseline)
    return AnalysisReport(
        findings=tuple(new),
        files_indexed=len(program.modules) + len(program.parse_errors),
        baselined=tuple(grandfathered),
        parse_errors=dict(program.parse_errors),
    )


def _list_checks() -> str:
    lines = []
    for checker in CHECKERS:
        for check_id, name in sorted(checker.check_ids.items()):
            lines.append(f"{check_id}  {name:<22}  {checker.__class__.__name__}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``analyze`` entry points."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.analysis",
        description=(
            "Whole-program dimensional & determinism analysis (stdlib-only)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="CHECK",
        help="run only these checks (ids or names)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="FILE",
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print the check catalogue"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.list_checks:
        print(_list_checks())
        return 0
    baseline_path = None if args.no_baseline else args.baseline
    try:
        if args.write_baseline:
            report = analyze_paths(args.paths, select=args.select)
            all_findings = [*report.findings, *report.baselined]
            count = write_baseline(all_findings, args.baseline)
            print(
                f"wrote {count} baseline entr"
                f"{'y' if count == 1 else 'ies'} to {args.baseline}"
            )
            return 0
        report = analyze_paths(
            args.paths, select=args.select, baseline_path=baseline_path
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    output = (
        report.render_json() if args.format == "json" else report.render_text()
    )
    print(output)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
