"""D2 — planner purity and determinism of the policy layer.

The golden bit-identity replay test and the parallel result cache both
rest on two properties this checker proves statically:

**Purity (D201).**  Policies are planners: the only way a policy's
``on_checkpoint``/``after_io``/trigger path may mutate storage is by
submitting an :class:`~repro.actions.plan.ActionPlan` to
:meth:`ActionExecutor.apply`.  Lint rule R9 flags *direct* mutator
calls per file, but a policy could still reach a mutator through a
helper chain (the transitive-call hole).  D201 closes it: starting from
every policy entry point it walks the whole-program call graph, treats
``ActionExecutor.apply`` as the one opaque, sanctioned gateway, and
reports any path that reaches a storage mutator without passing through
it — including paths that sneak into executor internals or
controller-private helpers.

**Determinism (D202–D204).**  Replays must be bit-identical across
processes and machines, so analyzed code must not consult the module-
level :mod:`random` generator (D202 ``unseeded-random`` — seeded
``random.Random``/numpy ``default_rng`` instances are fine), the wall
clock (D203 ``wall-clock`` — ``time.time``/``perf_counter``/
``datetime.now`` and friends), or feed unordered ``set`` iteration into
ordering-sensitive sinks (D204 ``unordered-iteration`` — ``for``,
``list()``, ``tuple()``, ``enumerate()``, ``join()``; wrap in
``sorted()`` instead).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.analysis.framework import (
    Checker,
    Finding,
    register_checker,
)
from repro.devtools.analysis.symbols import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleIndex,
    Program,
)
from repro.devtools.rules import MUTATOR_METHODS

__all__ = ["DeterminismChecker", "PurityChecker"]

#: Policy entry points whose transitive call closure must stay pure.
_ENTRY_POINTS = ("on_start", "on_checkpoint", "after_io", "on_end")

#: Base class marking a planner (matched by bare name, so fixture
#: hierarchies work without importing the real one).
_POLICY_BASE = "PowerPolicy"

#: The sanctioned mutation gateway: applying a typed plan.
_GATEWAY_METHOD = "apply"
_GATEWAY_CLASS = "ActionExecutor"


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return ""


def _mentions_executor(node: ast.expr | None) -> bool:
    """Whether a receiver expression textually involves an executor."""
    if node is None:
        return False
    for sub in ast.walk(node):
        name = ""
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if "executor" in name.lower():
            return True
    return False


@register_checker
class PurityChecker(Checker):
    """D201: policy paths reaching storage mutation outside the executor."""

    check_ids = {"D201": "planner-purity"}

    def check_module(
        self, module: ModuleIndex, program: Program
    ) -> Iterator[Finding]:
        """Walk every policy entry point defined in ``module``."""
        for cls in module.classes.values():
            if not self._is_policy(cls, program):
                continue
            for entry_name in _ENTRY_POINTS:
                entry = cls.methods.get(entry_name)
                if entry is None:
                    continue  # inherited entry points are checked at the base
                for offence, chain in self._find_mutations(entry, program):
                    yield self.finding(
                        "D201",
                        module,
                        entry.node,
                        entry.qualname,
                        f"reaches storage mutator {offence!r} without going "
                        f"through ActionExecutor.apply (call chain: "
                        f"{' -> '.join(chain)})",
                    )

    @staticmethod
    def _is_policy(cls: ClassInfo, program: Program) -> bool:
        return program.inherits_from(cls, _POLICY_BASE)

    def _find_mutations(
        self, entry: FunctionInfo, program: Program
    ) -> list[tuple[str, list[str]]]:
        """BFS over the call graph; returns (mutator, chain) per offence."""
        offences: list[tuple[str, list[str]]] = []
        seen: set[str] = {entry.qualname}
        queue: list[tuple[FunctionInfo, list[str]]] = [(entry, [entry.name])]
        while queue:
            fn, chain = queue.pop(0)
            module = program.modules.get(fn.module)
            owner = (
                program.classes.get(f"{fn.module}.{fn.class_name}")
                if fn.class_name
                else None
            )
            for site in fn.calls:
                if self._is_gateway(site, module, owner, program):
                    continue  # plans applied through the executor are legal
                if site.method in MUTATOR_METHODS:
                    offence = (site.method, [*chain, f"{site.method}()"])
                    if offence not in offences:
                        offences.append(offence)
                    continue
                callee = self._resolve(site, fn, module, owner, program)
                if callee is None or callee.qualname in seen:
                    continue
                seen.add(callee.qualname)
                queue.append((callee, [*chain, callee.name]))
        return offences

    def _is_gateway(
        self,
        site: CallSite,
        module: ModuleIndex | None,
        owner: ClassInfo | None,
        program: Program,
    ) -> bool:
        if site.method != _GATEWAY_METHOD:
            return False
        if _mentions_executor(site.receiver):
            return True
        if module is not None and site.receiver is not None:
            cls = self._receiver_class(site.receiver, module, owner, program)
            if cls is not None and cls.name == _GATEWAY_CLASS:
                return True
        return False

    def _resolve(
        self,
        site: CallSite,
        caller: FunctionInfo,
        module: ModuleIndex | None,
        owner: ClassInfo | None,
        program: Program,
    ) -> FunctionInfo | None:
        if module is None:
            return None
        if site.receiver is None:  # bare name call
            full = program.resolve_name(module, site.method)
            if full is not None and full in program.functions:
                return program.functions[full]
            if full is not None and full in program.classes:
                init = program.classes[full].methods.get("__init__")
                return init
            return None
        # module.function(...)
        if isinstance(site.receiver, ast.Name):
            dotted = f"{site.receiver.id}.{site.method}"
            full = program.resolve_name(module, dotted)
            if full is not None and full in program.functions:
                return program.functions[full]
        cls = self._receiver_class(site.receiver, module, owner, program)
        if cls is not None:
            return program.resolve_method(cls, site.method)
        return None

    def _receiver_class(
        self,
        receiver: ast.expr,
        module: ModuleIndex,
        owner: ClassInfo | None,
        program: Program,
    ) -> ClassInfo | None:
        """Static class of a receiver expression, best effort."""
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                return owner
            return None
        if isinstance(receiver, ast.Attribute):
            base = self._receiver_class(receiver.value, module, owner, program)
            if base is not None:
                annotation = program.class_attribute(base, receiver.attr)
                return program.resolve_class(module, annotation)
            return None
        if isinstance(receiver, ast.Call):
            func = receiver.func
            if isinstance(func, ast.Attribute):
                base = self._receiver_class(func.value, module, owner, program)
                if base is not None:
                    method = program.resolve_method(base, func.attr)
                    if method is not None:
                        return program.resolve_class(
                            program.modules.get(method.module) or module,
                            method.returns,
                        )
            elif isinstance(func, ast.Name):
                full = program.resolve_name(module, func.id)
                if full is not None and full in program.classes:
                    return program.classes[full]
                if full is not None and full in program.functions:
                    fn = program.functions[full]
                    return program.resolve_class(
                        program.modules.get(fn.module) or module, fn.returns
                    )
        return None


#: Module-level :mod:`random` functions that draw from the shared,
#: process-global generator.  ``Random``/``SystemRandom``/``seed`` and
#: state accessors are excluded: instantiating a seeded generator is the
#: *fix* for this finding.
_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Wall-clock reads per module: anything here makes output depend on
#: when (not what) you replay.
_WALL_CLOCK = {
    "time": frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
        }
    ),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}

#: Ordering-sensitive sink calls for set iteration.
_ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "join", "iter", "next"})


@register_checker
class DeterminismChecker(Checker):
    """D202–D204: nondeterminism sources that break bit-identity."""

    check_ids = {
        "D202": "unseeded-random",
        "D203": "wall-clock",
        "D204": "unordered-iteration",
    }

    def check_module(
        self, module: ModuleIndex, program: Program
    ) -> Iterator[Finding]:
        """Scan every expression in the module for nondeterminism sources."""
        set_names = self._set_typed_names(module)
        contexts = _context_table(module.tree, module.name)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, module, contexts)
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, set_names):
                    yield self.finding(
                        "D204",
                        module,
                        node.iter,
                        contexts.get(node, ""),
                        "iterates an unordered set — order depends on hash "
                        "seeding; iterate sorted(...) instead",
                    )

    # ------------------------------------------------------------------
    # D202 / D203 and the call-shaped D204 sinks
    # ------------------------------------------------------------------
    def _check_call(
        self,
        node: ast.Call,
        module: ModuleIndex,
        contexts: dict[ast.AST, str],
    ) -> Iterator[Finding]:
        context = contexts.get(node, "")
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _terminal_name(func.value)
            target = module.imports.get(receiver, receiver)
            if receiver == "random" or target == "random":
                if func.attr in _RANDOM_FUNCS:
                    yield self.finding(
                        "D202",
                        module,
                        node,
                        context,
                        f"random.{func.attr}() draws from the process-global "
                        "generator — use a seeded random.Random / "
                        "numpy default_rng instance",
                    )
            clock = _WALL_CLOCK.get(receiver) or _WALL_CLOCK.get(
                target.rsplit(".", 1)[-1]
            )
            if clock and func.attr in clock:
                yield self.finding(
                    "D203",
                    module,
                    node,
                    context,
                    f"{receiver}.{func.attr}() reads the wall clock — "
                    "simulation logic must use virtual time "
                    "(repro.engine.SimClock)",
                )
        elif isinstance(func, ast.Name):
            origin = module.imports.get(func.id, "")
            if origin.startswith("random.") and func.id in _RANDOM_FUNCS:
                yield self.finding(
                    "D202",
                    module,
                    node,
                    context,
                    f"{func.id}() (from random) draws from the process-"
                    "global generator — use a seeded random.Random instance",
                )
            if origin.startswith("time.") and origin.split(".")[-1] in (
                _WALL_CLOCK["time"]
            ):
                yield self.finding(
                    "D203",
                    module,
                    node,
                    context,
                    f"{func.id}() (from time) reads the wall clock — "
                    "simulation logic must use virtual time",
                )
        # D204: sink(set_expr)
        sink = _terminal_name(func)
        if sink in _ORDER_SINKS and node.args:
            set_names = self._set_typed_names(module)
            if self._is_set_expr(node.args[0], set_names):
                yield self.finding(
                    "D204",
                    module,
                    node,
                    context,
                    f"{sink}() over an unordered set — order depends on "
                    "hash seeding; wrap the set in sorted(...)",
                )

    # ------------------------------------------------------------------
    # D204 helpers
    # ------------------------------------------------------------------
    def _set_typed_names(self, module: ModuleIndex) -> set[str]:
        """Names statically known to hold a set, per module (memoized)."""
        cached = getattr(module, "_set_typed_names", None)
        if cached is not None:
            return cached
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and self._builds_set(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                annotation = ast.unparse(node.annotation)
                if annotation.split("[", 1)[0].strip().rsplit(".", 1)[-1] in (
                    "set",
                    "Set",
                    "frozenset",
                    "FrozenSet",
                    "AbstractSet",
                    "MutableSet",
                ):
                    names.add(node.target.id)
        module._set_typed_names = names  # type: ignore[attr-defined]
        return names

    @staticmethod
    def _builds_set(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and _terminal_name(node.func) in (
            "set",
            "frozenset",
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return DeterminismChecker._builds_set(
                node.left
            ) or DeterminismChecker._builds_set(node.right)
        return False

    def _is_set_expr(self, node: ast.expr, set_names: set[str]) -> bool:
        if self._builds_set(node):
            return True
        if isinstance(node, ast.Name) and node.id in set_names:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False


def _context_table(tree: ast.Module, module_name: str) -> dict[ast.AST, str]:
    """Map every AST node to its enclosing definition's qualified name."""
    table: dict[ast.AST, str] = {}

    def visit(node: ast.AST, context: str) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            context = f"{context}.{node.name}" if context else node.name
        table[node] = context
        for child in ast.iter_child_nodes(node):
            visit(child, context)

    visit(tree, "")
    return {
        node: f"{module_name}.{ctx}" if ctx else ""
        for node, ctx in table.items()
    }
