"""``python -m repro.devtools.analysis`` delegates to the analyzer CLI."""

import sys

from repro.devtools.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
