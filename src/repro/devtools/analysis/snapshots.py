"""D205 — stateful policies must implement the Snapshottable protocol.

Crash-safe resume (:mod:`repro.persistence`) rebuilds a simulation from
a ``.ecsn`` snapshot by calling ``snapshot_state`` / ``restore_state``
on every stateful component.  The seam is only bit-identical if *every*
accumulator survives the round trip — a policy that grows window
cursors or counters the capture never sees will replay correctly until
the first resume, then silently diverge.

D205 (``unsnapshottable-state``) closes that hole statically.  For each
class inheriting (transitively, by bare name) from ``PowerPolicy`` it
flags:

* **Hidden state** — the class rebinds ``self.<attr>`` in a method
  outside the construction/restore surface (``__init__``, ``bind``,
  ``snapshot_state``, ``restore_state``) without defining *both*
  protocol methods in its own body.  Inherited implementations do not
  count: the base class cannot know about attributes it never assigns.
* **Half the protocol** — the class defines exactly one of
  ``snapshot_state`` / ``restore_state``; a capture nobody can restore
  (or vice versa) is always a bug.

Stateless planners are fine: the ``PowerPolicy`` base snapshots the
shared ``determinations`` counter for them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.analysis.framework import (
    Checker,
    Finding,
    register_checker,
)
from repro.devtools.analysis.symbols import ClassInfo, ModuleIndex, Program

__all__ = ["SnapshotProtocolChecker"]

#: Base class marking a planner (matched by bare name, like D201).
_POLICY_BASE = "PowerPolicy"

#: The two halves of the repro.persistence Snapshottable protocol.
_PROTOCOL = ("snapshot_state", "restore_state")

#: Methods allowed to rebind ``self.<attr>`` without implying hidden
#: state: construction wiring plus the protocol itself.
_EXEMPT_METHODS = frozenset({"__init__", "bind", *_PROTOCOL})


def _self_assignments(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Attribute names rebound on ``self`` anywhere inside ``fn``."""
    names: list[str] = []
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in names
            ):
                names.append(target.attr)
    return names


@register_checker
class SnapshotProtocolChecker(Checker):
    """D205: policy state invisible to snapshot/restore."""

    check_ids = {"D205": "unsnapshottable-state"}

    def check_module(
        self, module: ModuleIndex, program: Program
    ) -> Iterator[Finding]:
        """Audit every policy class defined in ``module``."""
        for cls in module.classes.values():
            if not program.inherits_from(cls, _POLICY_BASE):
                continue
            yield from self._check_class(cls, module)

    def _check_class(
        self, cls: ClassInfo, module: ModuleIndex
    ) -> Iterator[Finding]:
        defined = [name for name in _PROTOCOL if name in cls.methods]
        if len(defined) == 1:
            present = defined[0]
            missing = next(n for n in _PROTOCOL if n != present)
            yield self.finding(
                "D205",
                module,
                cls.methods[present].node,
                cls.methods[present].qualname,
                f"defines {present}() but not {missing}() — half the "
                "Snapshottable protocol; a capture nobody can restore "
                "(or restore nobody can capture) breaks crash-safe resume",
            )
            return
        if len(defined) == 2:
            return  # full protocol: hidden-state rule satisfied by contract
        mutations = [
            (name, attr)
            for name, fn in cls.methods.items()
            if name not in _EXEMPT_METHODS and not fn.is_property
            for attr in _self_assignments(fn.node)
        ]
        if not mutations:
            return
        attrs = sorted({attr for _, attr in mutations})
        methods = sorted({name for name, _ in mutations})
        yield self.finding(
            "D205",
            module,
            cls.node,
            cls.qualname,
            f"mutates {', '.join('self.' + a for a in attrs)} in "
            f"{', '.join(m + '()' for m in methods)} but implements no "
            "snapshot_state()/restore_state() — state the persistence "
            "layer cannot capture makes resumed replays diverge",
        )
