"""D1 — dimensional consistency of the energy/time/byte bookkeeping.

The simulator's headline numbers are integrals: joules are watts ×
seconds of power-state dwell time, throughput is bytes / seconds, and a
single mixed-up term silently corrupts every downstream table.  This
checker assigns a *dimension* to expressions — seeded from the
:mod:`repro.units` aliases (``Seconds``, ``Joules``, ``Watts``,
``Bytes``, ``Rate``) in annotations and from the units constants
themselves — and propagates it through assignments, attribute reads
(via the program-wide symbol table), calls, and arithmetic:

* multiplication/division convert dimensions (``Watts × Seconds →
  Joules``, ``Bytes / Seconds → Rate``, same/same → scalar), and
* addition, subtraction, ``min``/``max``/``sum`` folding, comparisons,
  returns, and argument passing must *preserve* them.

Checks:

=====  ====================  ============================================
id     name                  finding
=====  ====================  ============================================
D101   mixed-dimension-arith joules + seconds, watts − bytes, ...
D102   mixed-dimension-cmp   watts compared to bytes, ...
D103   return-dimension      returning Seconds from a ``-> Joules`` def
D104   argument-dimension    passing Joules where Seconds is declared
=====  ====================  ============================================

Unknown dimensions propagate silently: only a *provable* clash between
two concrete dimensions is reported, so unannotated code stays quiet.
"""

from __future__ import annotations

import ast
import enum
from typing import Iterator

from repro.devtools.analysis.framework import (
    Checker,
    Finding,
    register_checker,
)
from repro.devtools.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleIndex,
    Program,
    _annotation_text,
    annotation_terminal,
)

__all__ = [
    "Dim",
    "DimensionChecker",
    "combine_div",
    "combine_mul",
    "dimension_of_annotation",
]


class Dim(enum.Enum):
    """A physical dimension tracked by the checker."""

    SECONDS = "seconds"
    JOULES = "joules"
    WATTS = "watts"
    BYTES = "bytes"
    RATE = "bytes/second"
    #: Dimensionless number: literals, counts, ratios — combines freely.
    SCALAR = "scalar"


#: Annotation alias → dimension (the repro.units aliases).
_DIM_BY_ALIAS = {
    "Seconds": Dim.SECONDS,
    "Joules": Dim.JOULES,
    "Watts": Dim.WATTS,
    "Bytes": Dim.BYTES,
    "Rate": Dim.RATE,
}

#: units constant name → dimension of a value built from it.
_DIM_BY_CONSTANT = {
    "SECOND": Dim.SECONDS,
    "MINUTE": Dim.SECONDS,
    "HOUR": Dim.SECONDS,
    "DAY": Dim.SECONDS,
    "KB": Dim.BYTES,
    "MB": Dim.BYTES,
    "GB": Dim.BYTES,
    "TB": Dim.BYTES,
    "BLOCK_SIZE": Dim.BYTES,
    "WATT": Dim.WATTS,
    "KILOWATT": Dim.WATTS,
}

#: Dimension algebra for multiplication (symmetric pairs listed once).
_MUL = {
    frozenset((Dim.WATTS, Dim.SECONDS)): Dim.JOULES,
    frozenset((Dim.RATE, Dim.SECONDS)): Dim.BYTES,
}

#: Dimension algebra for division: (numerator, denominator) → quotient.
_DIV = {
    (Dim.JOULES, Dim.SECONDS): Dim.WATTS,
    (Dim.JOULES, Dim.WATTS): Dim.SECONDS,
    (Dim.BYTES, Dim.SECONDS): Dim.RATE,
    (Dim.BYTES, Dim.RATE): Dim.SECONDS,
}


def combine_mul(left: Dim | None, right: Dim | None) -> Dim | None:
    """Dimension of ``left * right``; ``None`` when unknown/undefined."""
    if left is None or right is None:
        return None
    if left is Dim.SCALAR:
        return right
    if right is Dim.SCALAR:
        return left
    return _MUL.get(frozenset((left, right)))


def combine_div(left: Dim | None, right: Dim | None) -> Dim | None:
    """Dimension of ``left / right``; ``None`` when unknown/undefined."""
    if left is None or right is None:
        return None
    if left is right:
        return Dim.SCALAR
    if right is Dim.SCALAR:
        return left
    if left is Dim.SCALAR:
        return None
    return _DIV.get((left, right))


def dimension_of_annotation(text: str | None) -> Dim | None:
    """Dimension named by an annotation string, or ``None``."""
    terminal = annotation_terminal(text)
    if terminal is None:
        return None
    return _DIM_BY_ALIAS.get(terminal)


def _container_value_dim(text: str | None) -> Dim | None:
    """Element dimension of ``dict[K, Joules]`` / ``list[Seconds]`` / ...."""
    if not text or "[" not in text:
        return None
    head, _, inner = text.partition("[")
    inner = inner.rsplit("]", 1)[0]
    base = head.strip().rsplit(".", 1)[-1]
    parts = [p.strip() for p in inner.split(",")]
    if base in ("dict", "Dict", "defaultdict", "Mapping", "MutableMapping"):
        candidate = parts[-1] if len(parts) >= 2 else None
    elif base in ("list", "List", "tuple", "Tuple", "set", "Set",
                  "frozenset", "Sequence", "Iterable", "Iterator"):
        candidate = parts[0] if parts else None
    else:
        return None
    return _DIM_BY_ALIAS.get((candidate or "").rsplit(".", 1)[-1])


class _FunctionScope:
    """Per-function dimension environment and type hints."""

    def __init__(
        self,
        fn: FunctionInfo,
        module: ModuleIndex,
        program: Program,
        owner: ClassInfo | None,
    ) -> None:
        self.fn = fn
        self.module = module
        self.program = program
        self.owner = owner
        #: Local name → dimension.
        self.dims: dict[str, Dim] = {}
        #: Local name → annotation text (for receiver type inference).
        self.types: dict[str, str] = {}
        for name, annotation in fn.params.items():
            dim = dimension_of_annotation(annotation)
            if dim is not None:
                self.dims[name] = dim
            if annotation:
                self.types[name] = annotation


@register_checker
class DimensionChecker(Checker):
    """D101–D104: dimension clashes in arithmetic, compares, returns, calls."""

    check_ids = {
        "D101": "mixed-dimension-arith",
        "D102": "mixed-dimension-cmp",
        "D103": "return-dimension",
        "D104": "argument-dimension",
    }

    def check_module(
        self, module: ModuleIndex, program: Program
    ) -> Iterator[Finding]:
        """Check every function and method defined in ``module``."""
        for fn in module.functions.values():
            yield from self._check_function(fn, module, program, owner=None)
        for cls in module.classes.values():
            for method in cls.methods.values():
                yield from self._check_function(
                    method, module, program, owner=cls
                )

    # ------------------------------------------------------------------
    # per-function walk
    # ------------------------------------------------------------------
    def _check_function(
        self,
        fn: FunctionInfo,
        module: ModuleIndex,
        program: Program,
        owner: ClassInfo | None,
    ) -> Iterator[Finding]:
        scope = _FunctionScope(fn, module, program, owner)
        self._problems: list[tuple[str, ast.AST, str]] = []
        declared = dimension_of_annotation(fn.returns)
        for node in self._walk_statements(fn.node.body, scope):
            if isinstance(node, ast.Return) and node.value is not None:
                actual = self._dim_of(node.value, scope)
                if (
                    declared is not None
                    and actual is not None
                    and actual is not Dim.SCALAR
                    and actual is not declared
                ):
                    self._problems.append(
                        (
                            "D103",
                            node,
                            f"returns {actual.value} from a function "
                            f"declared '-> {fn.returns}'",
                        )
                    )
        seen: set[tuple[str, int, int, str]] = set()
        for check_id, node, message in self._problems:
            key = (
                check_id,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                message,
            )
            if key in seen:
                continue  # re-evaluation of a shared subexpression
            seen.add(key)
            yield self.finding(check_id, module, node, fn.qualname, message)

    def _walk_statements(
        self, body: list[ast.stmt], scope: _FunctionScope
    ) -> Iterator[ast.stmt]:
        """Walk statements in source order, updating the environment."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are indexed and checked separately
            self._visit_expressions(stmt, scope)
            if isinstance(stmt, ast.Assign):
                dim = self._dim_of(stmt.value, scope)
                annotation = self._annotation_of(stmt.value, scope)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if dim is not None and dim is not Dim.SCALAR:
                            scope.dims[target.id] = dim
                        else:
                            scope.dims.pop(target.id, None)
                        if annotation:
                            scope.types[target.id] = annotation
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                annotation = _annotation_text(stmt.annotation)
                dim = dimension_of_annotation(annotation)
                if dim is not None:
                    scope.dims[stmt.target.id] = dim
                if annotation:
                    scope.types[stmt.target.id] = annotation
                if stmt.value is not None:
                    actual = self._dim_of(stmt.value, scope)
                    if (
                        dim is not None
                        and actual is not None
                        and actual not in (Dim.SCALAR, dim)
                    ):
                        self._problems.append(
                            (
                                "D101",
                                stmt,
                                f"assigns {actual.value} to a name "
                                f"annotated {annotation}",
                            )
                        )
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.op, (ast.Add, ast.Sub)):
                    if isinstance(stmt.target, ast.Name):
                        left = scope.dims.get(stmt.target.id)
                    else:
                        left = self._dim_of(stmt.target, scope)
                    right = self._dim_of(stmt.value, scope)
                    self._combine_additive(left, right, stmt, scope)
            elif isinstance(stmt, ast.For) and isinstance(
                stmt.target, ast.Name
            ):
                element = self._element_annotation(stmt.iter, scope)
                if element:
                    scope.types[stmt.target.id] = element
                    dim = dimension_of_annotation(element)
                    if dim is not None:
                        scope.dims[stmt.target.id] = dim
            yield stmt
            # Recurse into compound statements' bodies.
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if isinstance(inner, list) and inner and isinstance(
                    inner[0], ast.stmt
                ):
                    yield from self._walk_statements(inner, scope)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._walk_statements(handler.body, scope)

    def _element_annotation(
        self, iterable: ast.expr, scope: _FunctionScope
    ) -> str | None:
        """Element annotation when iterating ``list[X]`` / ``Iterable[X]``."""
        annotation = self._annotation_of(iterable, scope)
        if not annotation or "[" not in annotation:
            return None
        head, _, inner = annotation.partition("[")
        base = head.strip().rsplit(".", 1)[-1]
        if base in ("list", "List", "tuple", "Tuple", "set", "Set",
                    "frozenset", "Sequence", "Iterable", "Iterator"):
            return inner.rsplit("]", 1)[0].split(",")[0].strip()
        return None

    def _visit_expressions(
        self, stmt: ast.stmt, scope: _FunctionScope
    ) -> None:
        """Evaluate this statement's own expressions for side-effect findings."""
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(child, ast.expr):
                continue
            for node in ast.walk(child):
                if isinstance(node, ast.Compare):
                    self._check_compare(node, scope)
                elif isinstance(node, ast.Call):
                    self._check_call_arguments(node, scope)
                elif isinstance(node, ast.BinOp):
                    self._dim_of(node, scope)  # flags D101 as a side effect

    # ------------------------------------------------------------------
    # dimension evaluation
    # ------------------------------------------------------------------
    def _dim_of(self, node: ast.expr, scope: _FunctionScope) -> Dim | None:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return Dim.SCALAR
        if isinstance(node, ast.Name):
            dim = scope.dims.get(node.id)
            if dim is not None:
                return dim
            if node.id in _DIM_BY_CONSTANT and self._is_units_name(
                node.id, scope
            ):
                return _DIM_BY_CONSTANT[node.id]
            annotation = scope.module.variables.get(node.id)
            return dimension_of_annotation(annotation)
        if isinstance(node, ast.Attribute):
            return self._dim_of_attribute(node, scope)
        if isinstance(node, ast.UnaryOp):
            return self._dim_of(node.operand, scope)
        if isinstance(node, ast.BinOp):
            return self._dim_of_binop(node, scope)
        if isinstance(node, ast.IfExp):
            left = self._dim_of(node.body, scope)
            right = self._dim_of(node.orelse, scope)
            if left == right:
                return left
            if left in (None, Dim.SCALAR):
                return right
            if right in (None, Dim.SCALAR):
                return left
            return None
        if isinstance(node, ast.Call):
            return self._dim_of_call(node, scope)
        if isinstance(node, ast.Subscript):
            container = self._annotation_of(node.value, scope)
            return _container_value_dim(container)
        return None

    def _is_units_name(self, name: str, scope: _FunctionScope) -> bool:
        target = scope.module.imports.get(name, "")
        return target.startswith("repro.units") or scope.module.name.endswith(
            "units"
        )

    def _dim_of_attribute(
        self, node: ast.Attribute, scope: _FunctionScope
    ) -> Dim | None:
        # units.HOUR and friends.
        if isinstance(node.value, ast.Name):
            base = scope.module.imports.get(node.value.id, node.value.id)
            if base in ("repro.units", "units") and node.attr in _DIM_BY_CONSTANT:
                return _DIM_BY_CONSTANT[node.attr]
            if base == "repro.units" or base.endswith(".units"):
                alias = _DIM_BY_ALIAS.get(node.attr)
                if alias is not None:
                    return None  # the alias object itself, not a value
        annotation = self._annotation_of(node, scope)
        dim = dimension_of_annotation(annotation)
        if dim is not None:
            return dim
        return None

    def _annotation_of(
        self, node: ast.expr, scope: _FunctionScope
    ) -> str | None:
        """Best-effort annotation text for an expression's static type."""
        if isinstance(node, ast.Name):
            if node.id == "self" and scope.owner is not None:
                return scope.owner.name
            return scope.types.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self._class_of(node.value, scope)
            if owner is not None:
                return scope.program.class_attribute(owner, node.attr)
            return None
        if isinstance(node, ast.Call):
            callee = self._resolve_callee(node, scope)
            if isinstance(callee, FunctionInfo):
                return callee.returns
            if isinstance(callee, ClassInfo):
                return callee.name
        return None

    def _class_of(
        self, node: ast.expr, scope: _FunctionScope
    ) -> ClassInfo | None:
        """Resolve an expression to the class of its static type."""
        if isinstance(node, ast.Name) and node.id == "self":
            return scope.owner
        annotation = self._annotation_of(node, scope)
        return scope.program.resolve_class(scope.module, annotation)

    def _resolve_callee(
        self, node: ast.Call, scope: _FunctionScope
    ) -> FunctionInfo | ClassInfo | None:
        func = node.func
        if isinstance(func, ast.Name):
            full = scope.program.resolve_name(scope.module, func.id)
            if full is not None:
                if full in scope.program.functions:
                    return scope.program.functions[full]
                if full in scope.program.classes:
                    return scope.program.classes[full]
            return None
        if isinstance(func, ast.Attribute):
            # module.function / module.Class
            if isinstance(func.value, ast.Name):
                dotted = f"{func.value.id}.{func.attr}"
                full = scope.program.resolve_name(scope.module, dotted)
                if full is not None:
                    if full in scope.program.functions:
                        return scope.program.functions[full]
                    if full in scope.program.classes:
                        return scope.program.classes[full]
            owner = self._class_of(func.value, scope)
            if owner is not None:
                return scope.program.resolve_method(owner, func.attr)
        return None

    _DIM_PRESERVING_BUILTINS = frozenset(
        {"abs", "float", "round", "int"}
    )
    _DIM_FOLDING_BUILTINS = frozenset({"min", "max", "sum", "sorted"})

    def _dim_of_call(self, node: ast.Call, scope: _FunctionScope) -> Dim | None:
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in self._DIM_PRESERVING_BUILTINS and node.args:
                return self._dim_of(node.args[0], scope)
            if name in self._DIM_FOLDING_BUILTINS and node.args:
                return self._fold_arguments(node, scope)
        callee = self._resolve_callee(node, scope)
        if isinstance(callee, FunctionInfo):
            return dimension_of_annotation(callee.returns)
        return None

    def _fold_arguments(
        self, node: ast.Call, scope: _FunctionScope
    ) -> Dim | None:
        """min/max/sum preserve dimension; mixing dimensions is D101."""
        dims = [self._dim_of(arg, scope) for arg in node.args]
        concrete = [d for d in dims if d is not None and d is not Dim.SCALAR]
        if len(set(concrete)) > 1:
            names = " vs ".join(sorted({d.value for d in concrete}))
            self._problems.append(
                (
                    "D101",
                    node,
                    f"{getattr(node.func, 'id', 'fold')}() mixes "
                    f"dimensions: {names}",
                )
            )
            return None
        return concrete[0] if concrete else (Dim.SCALAR if dims else None)

    def _combine_additive(
        self,
        left: Dim | None,
        right: Dim | None,
        node: ast.AST,
        scope: _FunctionScope,
    ) -> Dim | None:
        if (
            left is not None
            and right is not None
            and left is not Dim.SCALAR
            and right is not Dim.SCALAR
            and left is not right
        ):
            op = "±"
            if isinstance(node, (ast.BinOp, ast.AugAssign)):
                op = "+" if isinstance(node.op, ast.Add) else "-"
            self._problems.append(
                (
                    "D101",
                    node,
                    f"mixed-dimension arithmetic: {left.value} {op} "
                    f"{right.value}",
                )
            )
            return None
        if left is None or right is None:
            return None
        if left is Dim.SCALAR:
            return right
        if right is Dim.SCALAR:
            return left
        return left

    def _dim_of_binop(self, node: ast.BinOp, scope: _FunctionScope) -> Dim | None:
        left = self._dim_of(node.left, scope)
        right = self._dim_of(node.right, scope)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._combine_additive(left, right, node, scope)
        if isinstance(node.op, ast.Mult):
            return combine_mul(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return combine_div(left, right)
        if isinstance(node.op, ast.Mod):
            return left
        return None

    # ------------------------------------------------------------------
    # comparison and call-argument checks
    # ------------------------------------------------------------------
    def _check_compare(self, node: ast.Compare, scope: _FunctionScope) -> None:
        if any(
            isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot))
            for op in node.ops
        ):
            return
        operands = [node.left, *node.comparators]
        dims = [self._dim_of(expr, scope) for expr in operands]
        for left, right in zip(dims, dims[1:]):
            if (
                left is not None
                and right is not None
                and left is not Dim.SCALAR
                and right is not Dim.SCALAR
                and left is not right
            ):
                self._problems.append(
                    (
                        "D102",
                        node,
                        f"comparison across dimensions: {left.value} vs "
                        f"{right.value}",
                    )
                )

    def _check_call_arguments(
        self, node: ast.Call, scope: _FunctionScope
    ) -> None:
        callee = self._resolve_callee(node, scope)
        params: list[tuple[str, str | None]]
        label: str
        if isinstance(callee, FunctionInfo):
            params = list(callee.params.items())
            label = callee.name
        elif isinstance(callee, ClassInfo):
            init = callee.methods.get("__init__")
            if init is not None:
                params = list(init.params.items())
            else:
                params = [(k, v) for k, v in callee.attributes.items()]
            label = callee.name
        else:
            return
        by_name = dict(params)
        pairs: list[tuple[str, str | None, ast.expr]] = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(params):
                name, annotation = params[index]
                pairs.append((name, annotation, arg))
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in by_name:
                pairs.append((keyword.arg, by_name[keyword.arg], keyword.value))
        for name, annotation, arg in pairs:
            declared = dimension_of_annotation(annotation)
            if declared is None:
                continue
            actual = self._dim_of(arg, scope)
            if (
                actual is not None
                and actual is not Dim.SCALAR
                and actual is not declared
            ):
                self._problems.append(
                    (
                        "D104",
                        arg,
                        f"passes {actual.value} to parameter {name!r} of "
                        f"{label}() declared {annotation}",
                    )
                )
