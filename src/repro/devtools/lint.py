"""Lint engine: file discovery, suppression comments, reporters, CLI.

Run over a tree or single files::

    python -m repro.devtools.lint src
    ecostor lint src --format json
    ecostor lint src/repro/storage --select R1 R4

Exit status is 0 when clean, 1 when violations were found, 2 on usage
errors (unknown rule, unreadable path).  A violation is silenced by a
trailing comment on its line::

    watts = joules / 3600.0  # lint: ignore[R2]
    watts = joules / 3600.0  # lint: ignore          (all rules)

Suppressions accept rule ids (``R2``) and names (``magic-number``).
Files that fail to parse are reported under the pseudo-rule ``E0``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import ValidationError
from repro.devtools.rules import RULES, LintContext, Rule, Violation, resolve_rules

__all__ = ["LintReport", "lint_file", "lint_paths", "main"]

_SUPPRESSION = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    violations: tuple[Violation, ...]
    files_checked: int

    @property
    def clean(self) -> bool:
        """Whether no violations survived suppression filtering."""
        return not self.violations

    def render_text(self) -> str:
        """The default human-readable report."""
        lines = [v.render() for v in self.violations]
        noun = "file" if self.files_checked == 1 else "files"
        if self.violations:
            count = len(self.violations)
            vnoun = "violation" if count == 1 else "violations"
            lines.append(
                f"{count} {vnoun} in {self.files_checked} {noun} checked"
            )
        else:
            lines.append(f"clean: {self.files_checked} {noun} checked")
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report for editor/CI integration."""
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "violations": [
                    {
                        "rule_id": v.rule_id,
                        "rule_name": v.rule_name,
                        "path": v.path,
                        "line": v.line,
                        "col": v.col,
                        "message": v.message,
                    }
                    for v in self.violations
                ],
            },
            indent=2,
        )


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Map line number → suppressed rule keys (``None`` = all rules)."""
    table: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            table[lineno] = None
        else:
            table[lineno] = {
                part.strip().lower() for part in spec.split(",") if part.strip()
            }
    return table


def _is_suppressed(
    violation: Violation, table: dict[int, set[str] | None]
) -> bool:
    if violation.line not in table:
        return False
    rules = table[violation.line]
    if rules is None:
        return True
    return violation.rule_id.lower() in rules or violation.rule_name in rules


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub
        elif path.is_file():
            yield path
        else:
            raise ValidationError(f"no such file or directory: {path}")


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Violation]:
    """Lint one file; returns surviving violations sorted by location."""
    chosen = list(rules) if rules is not None else list(RULES.values())
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule_id="E0",
                rule_name="parse-error",
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = LintContext(path=str(path), source=source, tree=tree)
    table = _suppressions(source)
    found: list[Violation] = []
    for rule in chosen:
        for violation in rule.check(ctx):
            if not _is_suppressed(violation, table):
                found.append(violation)
    found.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return found


def lint_paths(
    paths: Iterable[str | Path], select: Iterable[str] | None = None
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules."""
    rules = resolve_rules(list(select) if select else None)
    violations: list[Violation] = []
    files = 0
    for path in iter_python_files(paths):
        files += 1
        violations.extend(lint_file(path, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return LintReport(violations=tuple(violations), files_checked=files)


def _list_rules() -> str:
    width = max(len(rule.name) for rule in RULES.values())
    return "\n".join(
        f"{rule.rule_id}  {rule.name:<{width}}  {rule.summary}"
        for rule in RULES.values()
    )


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``lint`` entry points."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Domain linter for the repro codebase (stdlib-only).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="run only these rules (ids or names)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    try:
        report = lint_paths(args.paths, select=args.select)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    output = (
        report.render_json() if args.format == "json" else report.render_text()
    )
    print(output)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
