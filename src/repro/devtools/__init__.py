"""Developer tooling: domain lint rules and runtime invariant audits.

The simulator's correctness rests on conventions nothing in Python
enforces: SI base units everywhere (:mod:`repro.units`), a closed
power-state transition graph (:mod:`repro.storage.power`), and a single
exception hierarchy (:mod:`repro.errors`).  Silent violations of those
conventions produce *wrong energy numbers* rather than crashes — the
worst possible failure mode for a paper reproduction whose headline
claims rest on break-even arithmetic (paper §II-B, Table II).

This package provides three independent lines of defence, all built
only on the standard library (no mypy/ruff dependency):

* :mod:`repro.devtools.lint` — a line-local static analyser over
  :mod:`ast` with a registry of domain rules (R1–R9), per-line
  suppression comments (``# lint: ignore[rule-id]``), and text/JSON
  reporters.  Run it as ``python -m repro.devtools.lint src`` or
  ``ecostor lint``.
* :mod:`repro.devtools.analysis` — a whole-program analyser that
  indexes the package into a symbol table and call graph, then checks
  dimensional consistency over the :mod:`repro.units` aliases
  (D101–D104) and planner purity/determinism/snapshottability
  (D201–D205), gated on a
  committed ``analysis-baseline.json``.  Run it as ``ecostor analyze``.
* :mod:`repro.devtools.audit` — an opt-in runtime
  :class:`~repro.devtools.audit.InvariantAuditor` the trace replayer
  calls every policy monitoring period to assert energy conservation,
  capacity accounting, and monotonic simulated time, raising
  :class:`~repro.errors.AuditError` with a dump of the violating state.
  Enable it with ``ecostor run WORKLOAD POLICY --audit``.

See ``docs/devtools.md`` for the rule catalogue and
``docs/analysis.md`` for the analysis checks.
"""

from typing import Any

__all__ = [
    "CHECKERS",
    "Finding",
    "InvariantAuditor",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "analyze_paths",
    "lint_paths",
]

#: Lazy attribute → defining submodule.  Submodules are imported on first
#: access so that ``python -m repro.devtools.lint`` does not import the
#: module twice (once as a package attribute, once as ``__main__``).
_EXPORTS = {
    "InvariantAuditor": "repro.devtools.audit",
    "LintReport": "repro.devtools.lint",
    "lint_paths": "repro.devtools.lint",
    "RULES": "repro.devtools.rules",
    "LintContext": "repro.devtools.rules",
    "Rule": "repro.devtools.rules",
    "Violation": "repro.devtools.rules",
    "analyze_paths": "repro.devtools.analysis.cli",
    "CHECKERS": "repro.devtools.analysis.framework",
    "Finding": "repro.devtools.analysis.framework",
}


def __getattr__(name: str) -> Any:
    """Import the submodule backing ``name`` on first access."""
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
