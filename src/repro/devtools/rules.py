"""Domain lint rules for the repro codebase.

Each rule inspects one module's :mod:`ast` tree and yields
:class:`Violation` records.  Rules are registered in :data:`RULES` and
addressed by a short id (``R1`` … ``R11``) or a descriptive name — both
work in ``--select`` and in suppression comments
(``# lint: ignore[R2]`` / ``# lint: ignore[magic-number]``).

The rules encode *domain* conventions a general-purpose linter cannot
know:

=====  ====================  ==============================================
id     name                  convention enforced
=====  ====================  ==============================================
R1     float-equality        no ``==``/``!=`` on time/energy expressions
R2     magic-number          use :mod:`repro.units` constants, not literals
R3     exception-hierarchy   raise :class:`~repro.errors.ReproError` kinds
R4     power-state           transitions only via the enclosure API, and
                             only edges of ``LEGAL_TRANSITIONS``
R5     public-api            public functions are annotated and documented
R6     mutable-default       no mutable default argument values
R7     naked-except          no bare ``except:`` / ``except Exception:``
R8     ad-hoc-time           timeline sampling and fault bookkeeping only
                             through the :mod:`repro.engine` kernel
R9     direct-mutation       storage mutators and power-off enablement
                             only through the :mod:`repro.actions` layer
R10    cross-array-access    no hardcoded foreign-array component names
                             outside :mod:`repro.fleet`; ownership comes
                             from the router, never from a literal
R11    tier-mutation         tier placement (promote/demote/archive/
                             replicate) only through the
                             :mod:`repro.actions` layer
=====  ====================  ==============================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import ValidationError

__all__ = [
    "MUTATOR_METHODS",
    "RULES",
    "TIER_MUTATOR_METHODS",
    "LintContext",
    "Rule",
    "Violation",
    "legal_transition_names",
]


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: R2[magic-number] …``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id}[{self.rule_name}] {self.message}"
        )


@dataclass
class LintContext:
    """Per-file context handed to every rule."""

    path: str
    source: str
    tree: ast.Module
    #: Parent links for every node, for rules that need to look upward.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    @property
    def posix_path(self) -> str:
        """The file path with forward slashes, for suffix matching."""
        return Path(self.path).as_posix()


class Rule:
    """Base class: one registered lint rule."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Yield every violation of this rule in ``ctx.tree``."""
        raise NotImplementedError

    def violation(
        self, ctx: LintContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule_id=self.rule_id,
            rule_name=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: Registry of all rules, keyed by rule id.
RULES: dict[str, Rule] = {}


def _register(cls: type[Rule]) -> type[Rule]:
    rule = cls()
    if rule.rule_id in RULES:
        raise ValidationError(f"duplicate rule id {rule.rule_id!r}")
    RULES[rule.rule_id] = rule
    return cls


def _terminal_name(node: ast.AST) -> str:
    """Last dotted component of a name-like expression, else ``''``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return ""


# ---------------------------------------------------------------------------
# R1: float equality on time/energy expressions
# ---------------------------------------------------------------------------

#: Name fragments that mark an expression as time/energy-valued.  These
#: quantities are accumulated floats (integration of watts over virtual
#: seconds), so exact equality on them is almost always a latent bug.
_QUANTITY_FRAGMENTS = (
    "time",
    "seconds",
    "secs",
    "watts",
    "joules",
    "energy",
    "duration",
    "clock",
    "timestamp",
    "interval",
    "latency",
    "deadline",
)


def _is_quantity_expr(node: ast.AST) -> bool:
    name = _terminal_name(node).lower()
    return any(fragment in name for fragment in _QUANTITY_FRAGMENTS)


@_register
class FloatEqualityRule(Rule):
    """R1: ``==``/``!=`` between time/energy-valued expressions."""

    rule_id = "R1"
    name = "float-equality"
    summary = (
        "time/energy quantities are accumulated floats; compare with "
        "math.isclose or an explicit tolerance, never == / !="
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag Eq/NotEq comparisons whose operands look time/energy-valued."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                suspect = next(
                    (x for x in (left, right) if _is_quantity_expr(x)), None
                )
                if suspect is None:
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"float equality on {_terminal_name(suspect)!r} — "
                    "use math.isclose() or an explicit tolerance",
                )


# ---------------------------------------------------------------------------
# R2: magic numbers that shadow repro.units constants
# ---------------------------------------------------------------------------

#: Literal values for which a named constant exists in ``repro.units``.
_UNIT_VALUES: dict[float, str] = {
    1024.0: "units.KB",
    4096.0: "units.BLOCK_SIZE",
    1024.0**2: "units.MB",
    1024.0**3: "units.GB",
    1024.0**4: "units.TB",
    3600.0: "units.HOUR",
    86400.0: "units.DAY",
}

#: Bare names that already denote unit constants — a literal multiplied
#: by one of these is a *count* (``60.0 * units.MB``), not a disguised
#: unit, so it is exempt.
_UNIT_NAMES = {
    "KB",
    "MB",
    "GB",
    "TB",
    "BLOCK_SIZE",
    "PAGE_BYTES",
    "PAGE_BLOCKS",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WATT",
    "KILOWATT",
}


def _fold_numeric(node: ast.AST) -> float | None:
    """Constant-fold a small numeric expression, or ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _fold_numeric(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Mult, ast.Pow)
    ):
        left = _fold_numeric(node.left)
        right = _fold_numeric(node.right)
        if left is None or right is None:
            return None
        return left * right if isinstance(node.op, ast.Mult) else left**right
    return None


def _mentions_unit_constant(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if _terminal_name(sub) in _UNIT_NAMES:
            return True
    return False


@_register
class MagicNumberRule(Rule):
    """R2: numeric literal where a ``repro.units`` constant exists."""

    rule_id = "R2"
    name = "magic-number"
    summary = (
        "unit-conversion literals (3600, 1024**2, 2**30, ...) must be "
        "spelled with repro.units constants"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag foldable numeric expressions matching a units constant."""
        defining_modules = ("repro/units.py", "repro/devtools/rules.py")
        if ctx.posix_path.endswith(defining_modules):
            return  # the modules that *define* the constants / this mapping
        flagged_within: list[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Constant, ast.BinOp)):
                continue
            if any(node in ast.walk(seen) for seen in flagged_within):
                continue  # already reported as part of a folded parent
            value = _fold_numeric(node)
            if value is None or value not in _UNIT_VALUES:
                continue
            if isinstance(node, ast.Constant) and ctx.parents.get(node) is not None:
                parent = ctx.parents[node]
                if isinstance(parent, ast.BinOp) and _mentions_unit_constant(
                    parent
                ):
                    continue  # e.g. ``1024 * units.KB`` — a count, not a unit
            flagged_within.append(node)
            pretty = int(value) if float(value).is_integer() else value
            yield self.violation(
                ctx,
                node,
                f"magic number {pretty} — use {_UNIT_VALUES[value]}",
            )


# ---------------------------------------------------------------------------
# R3: exception hierarchy
# ---------------------------------------------------------------------------

#: Builtin exception types that library code must not raise directly:
#: callers are promised that every library failure is a ``ReproError``.
#: Protocol errors (KeyError, TypeError, AssertionError, ...) stay
#: allowed — errors.py explicitly lets programming errors propagate.
_BANNED_RAISES = {
    "ArithmeticError",
    "BaseException",
    "EnvironmentError",
    "Exception",
    "IOError",
    "OSError",
    "RuntimeError",
    "ValueError",
}

#: Suggested ReproError replacement per banned builtin.
_RAISE_REPLACEMENTS = {
    "ValueError": "ValidationError",
    "RuntimeError": "UsageError",
}


@_register
class ExceptionHierarchyRule(Rule):
    """R3: ``raise`` of a non-``ReproError`` exception class."""

    rule_id = "R3"
    name = "exception-hierarchy"
    summary = (
        "library errors must derive from repro.errors.ReproError so one "
        "except clause catches everything the package raises"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag raises of banned builtin exception classes."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _terminal_name(node.exc)
            if name not in _BANNED_RAISES:
                continue
            hint = _RAISE_REPLACEMENTS.get(name, "a ReproError subclass")
            yield self.violation(
                ctx,
                node,
                f"raise of builtin {name} — use repro.errors.{hint} "
                "so package errors stay catchable as ReproError",
            )


# ---------------------------------------------------------------------------
# R4: power-state transitions outside the enclosure API
# ---------------------------------------------------------------------------

#: Modules allowed to mutate power state: the state machine itself.
_POWER_STATE_OWNERS = (
    "repro/storage/enclosure.py",
    "repro/storage/power.py",
)

_FALLBACK_TRANSITIONS = frozenset(
    {
        ("ACTIVE", "IDLE"),
        ("IDLE", "ACTIVE"),
        ("IDLE", "SPIN_DOWN"),
        ("SPIN_DOWN", "OFF"),
        ("OFF", "SPIN_UP"),
        ("SPIN_UP", "IDLE"),
        ("SPIN_UP", "ACTIVE"),
        ("SPIN_UP", "OFF"),
    }
)

_legal_transition_cache: frozenset[tuple[str, str]] | None = None


def _power_module_path() -> Path:
    return Path(__file__).resolve().parent.parent / "storage" / "power.py"


def _extract_transition_pairs(tree: ast.Module) -> frozenset[tuple[str, str]]:
    pairs: set[tuple[str, str]] = set()
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "LEGAL_TRANSITIONS"
            for t in targets
        ):
            continue
        for tup in ast.walk(value):
            pair = _power_state_pair(tup)
            if pair is not None:
                pairs.add(pair)
    return frozenset(pairs)


def legal_transition_names() -> frozenset[tuple[str, str]]:
    """Legal ``(source, target)`` state-name pairs.

    Extracted statically from the ``LEGAL_TRANSITIONS`` table in
    ``repro/storage/power.py`` so the linter and the state machine can
    never drift apart; falls back to a baked-in copy of the graph if the
    source file is unreadable (e.g. running from a zipapp).
    """
    global _legal_transition_cache
    if _legal_transition_cache is None:
        try:
            tree = ast.parse(_power_module_path().read_text(encoding="utf-8"))
            pairs = _extract_transition_pairs(tree)
        except (OSError, SyntaxError):
            pairs = frozenset()
        _legal_transition_cache = pairs or _FALLBACK_TRANSITIONS
    return _legal_transition_cache


def _power_state_pair(node: ast.AST) -> tuple[str, str] | None:
    """``(a, b)`` member names if ``node`` is ``(PowerState.A, PowerState.B)``."""
    if not isinstance(node, ast.Tuple) or len(node.elts) != 2:
        return None
    names = []
    for elt in node.elts:
        if (
            isinstance(elt, ast.Attribute)
            and _terminal_name(elt.value) == "PowerState"
        ):
            names.append(elt.attr)
    if len(names) != 2:
        return None
    return names[0], names[1]


@_register
class PowerStateRule(Rule):
    """R4: power-state transitions fabricated outside the API."""

    rule_id = "R4"
    name = "power-state"
    summary = (
        "power state changes only through the DiskEnclosure state "
        "machine; transition pairs must be edges of LEGAL_TRANSITIONS"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag raw ``.state`` writes and illegal transition tuples."""
        owner = any(ctx.posix_path.endswith(p) for p in _POWER_STATE_OWNERS)
        legal = legal_transition_names()
        for node in ast.walk(ctx.tree):
            if not owner and isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                writes_state = any(
                    isinstance(t, ast.Attribute)
                    and t.attr in ("state", "_state")
                    for t in targets
                )
                mentions_power_state = any(
                    isinstance(sub, ast.Attribute)
                    and _terminal_name(sub.value) == "PowerState"
                    for sub in ast.walk(value)
                )
                if writes_state and mentions_power_state:
                    yield self.violation(
                        ctx,
                        node,
                        "power-state transition constructed outside the "
                        "DiskEnclosure/PowerModel API — drive the state "
                        "machine via submit()/settle() instead",
                    )
            pair = _power_state_pair(node)
            if pair is not None and pair not in legal:
                yield self.violation(
                    ctx,
                    node,
                    f"illegal power-state transition {pair[0]}→{pair[1]} "
                    "(not an edge of storage.power.LEGAL_TRANSITIONS)",
                )


# ---------------------------------------------------------------------------
# R5: public API annotations and docstrings
# ---------------------------------------------------------------------------


@_register
class PublicApiRule(Rule):
    """R5: public functions missing annotations or a docstring."""

    rule_id = "R5"
    name = "public-api"
    summary = (
        "every public function/method carries full parameter and return "
        "annotations plus a docstring"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag unannotated or undocumented public functions."""
        yield from self._scan(ctx, ctx.tree, in_class=False)

    def _scan(
        self, ctx: LintContext, scope: ast.AST, in_class: bool
    ) -> Iterator[Violation]:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield from self._scan(ctx, node, in_class=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue  # private and dunder names are exempt
                yield from self._check_function(ctx, node, in_class)

    def _check_function(
        self,
        ctx: LintContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        in_class: bool,
    ) -> Iterator[Violation]:
        problems: list[str] = []
        if ast.get_docstring(node) is None:
            problems.append("missing docstring")
        if node.returns is None:
            problems.append("missing return annotation")
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        static = any(
            _terminal_name(dec) == "staticmethod" for dec in node.decorator_list
        )
        if in_class and not static and positional:
            positional = positional[1:]  # self / cls
        unannotated = [
            a.arg
            for a in [*positional, *args.kwonlyargs, args.vararg, args.kwarg]
            if a is not None and a.annotation is None
        ]
        if unannotated:
            problems.append(
                "unannotated parameter(s): " + ", ".join(unannotated)
            )
        if problems:
            yield self.violation(
                ctx,
                node,
                f"public function {node.name!r}: " + "; ".join(problems),
            )


# ---------------------------------------------------------------------------
# R6: mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = {
    "bytearray",
    "defaultdict",
    "deque",
    "dict",
    "list",
    "set",
    "Counter",
    "OrderedDict",
}


@_register
class MutableDefaultRule(Rule):
    """R6: mutable default argument values."""

    rule_id = "R6"
    name = "mutable-default"
    summary = (
        "default argument values are evaluated once at def time; use "
        "None and construct inside the body"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag list/dict/set literals (or constructors) used as defaults."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                if self._is_mutable(default):
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in {node.name!r} — "
                        "default to None and build the value in the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and _terminal_name(node.func) in _MUTABLE_CALLS
        )


# ---------------------------------------------------------------------------
# R7: naked exception handlers
# ---------------------------------------------------------------------------

#: Exception names too broad to catch: a handler naming one of these
#: swallows AuditError, fault-injection errors, and genuine bugs alike.
#: Catch the narrowest ReproError subclass that the guarded code can
#: actually raise; true isolation boundaries (worker pools) carry an
#: explicit ``# lint: ignore[R7]`` with a justification.
_NAKED_EXCEPTS = {"BaseException", "Exception"}


@_register
class NakedExceptRule(Rule):
    """R7: bare ``except:`` or ``except Exception/BaseException:``."""

    rule_id = "R7"
    name = "naked-except"
    summary = (
        "handlers must name the narrowest exception they expect; a "
        "naked except hides AuditError and injected-fault failures"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag handlers with no type, or an over-broad builtin type."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare except: catches everything, including "
                    "KeyboardInterrupt — name the exception(s) expected",
                )
                continue
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for exc in types:
                name = _terminal_name(exc)
                if name in _NAKED_EXCEPTS:
                    yield self.violation(
                        ctx,
                        node,
                        f"except {name}: is too broad — it silently "
                        "swallows audit and fault-injection failures; "
                        "catch the narrowest expected type",
                    )


# ---------------------------------------------------------------------------
# R8: ad-hoc virtual-time calls outside the simulation kernel
# ---------------------------------------------------------------------------

#: The module allowed to drive time-owned entry points: the kernel
#: package itself (any file under it).
_TIME_OWNER_PACKAGE = "repro/engine/"

#: Modules owning a time-driven method and allowed to call it on
#: themselves (the timeline's ``finish`` resamples; the controller runs
#: its own bookkeeping on every submit).
_TIME_OWNER_FILES = (
    "repro/monitoring/timeline.py",
    "repro/storage/controller.py",
)

#: Timeline methods that advance sampling state.  Only suspicious on a
#: timeline-looking receiver — ``random.sample`` is a different thing.
_TIMELINE_METHODS = frozenset({"sample", "sample_due"})


@_register
class AdHocTimeRule(Rule):
    """R8: timeline sampling / fault bookkeeping bypassing the kernel."""

    rule_id = "R8"
    name = "ad-hoc-time"
    summary = (
        "PowerTimeline.sample/sample_due and StorageController.on_time "
        "fire as repro.engine events; calling them directly reintroduces "
        "ad-hoc time"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag time-owned method calls outside the kernel/owner modules."""
        path = ctx.posix_path
        if _TIME_OWNER_PACKAGE in path:
            return
        if any(path.endswith(p) for p in _TIME_OWNER_FILES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method == "on_time":
                yield self.violation(
                    ctx,
                    node,
                    "direct call to on_time() — fault bookkeeping fires as "
                    "a kernel FaultBookkeepingEvent; schedule it via "
                    "repro.engine instead",
                )
            elif (
                method in _TIMELINE_METHODS
                and "timeline" in _terminal_name(node.func.value).lower()
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"direct call to {method}() on a power timeline — "
                    "samples fire as kernel TimelineSampleEvents; schedule "
                    "them via repro.engine instead",
                )


# ---------------------------------------------------------------------------
# R9: storage mutation outside the action layer
# ---------------------------------------------------------------------------

#: The package holding the only legal mutation path: every file under
#: :mod:`repro.actions` (the executor is the one component allowed to
#: call controller mutators and enclosure power-off enablement).
_MUTATION_OWNER_PACKAGE = "repro/actions/"

#: Modules that *define* the mutators: self-calls and internal
#: bookkeeping there are implementation, not bypass (the controller's
#: submit path flushes its own write-delay partition; the enclosure
#: flips its own enablement when the state machine demands it).
_MUTATION_OWNER_FILES = (
    "repro/storage/controller.py",
    "repro/storage/enclosure.py",
)

#: Mutating entry points of the storage layer: placement, cache
#: selection, delayed-write flushing, migration charging, and power-off
#: enablement.  Everything else on the controller is a read.  Shared
#: with the D201 planner-purity checker in
#: :mod:`repro.devtools.analysis.determinism`, which closes this rule's
#: transitive-call hole.
MUTATOR_METHODS = frozenset(
    {
        "migrate_item",
        "preload_item",
        "unpin_item",
        "select_write_delay",
        "flush_write_delay",
        "flush_item",
        "charge_block_migration",
        "enable_power_off",
        "disable_power_off",
    }
)


@_register
class DirectMutationRule(Rule):
    """R9: controller/enclosure mutators called outside ``repro.actions``."""

    rule_id = "R9"
    name = "direct-mutation"
    summary = (
        "StorageController mutators and enclosure power-off enablement "
        "are applied only by the repro.actions executor; direct calls "
        "bypass the action log, fault gating, and dry-run accounting"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag storage-mutator calls outside the action layer."""
        path = ctx.posix_path
        if _MUTATION_OWNER_PACKAGE in path:
            return
        if any(path.endswith(p) for p in _MUTATION_OWNER_FILES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method not in MUTATOR_METHODS:
                continue
            yield self.violation(
                ctx,
                node,
                f"direct call to {method}() — storage mutations go "
                "through an ActionPlan applied by the repro.actions "
                "executor, which records, gates, and costs them",
            )


# ---------------------------------------------------------------------------
# R10: cross-array access via hardcoded namespaced names
# ---------------------------------------------------------------------------

#: The package that owns fleet namespacing: router, splitter, runner,
#: aggregator, and array-level chaos may spell array-qualified names
#: (they construct and audit them); everyone else must derive ownership
#: from the router.
_FLEET_OWNER_PACKAGE = "repro/fleet/"

#: A fleet-namespaced component name: ``"array-01:enc-00"`` or a
#: default-volume form like ``"vol/array-01:enc-00"``.  Matching one of
#: these as a *literal* means the code baked in another array's
#: identity instead of asking the router.
_ARRAY_NAME_PATTERN = re.compile(r"(?:^|/)array-\d+:")

#: Storage entry points whose target a literal array name would bypass
#: the router for: the R9 mutators plus the virtualization/controller
#: lookups that resolve component names to state.
_ARRAY_ACCESS_METHODS = frozenset(
    {
        "enclosure",
        "enclosure_of",
        "items_on",
        "used_bytes",
        "free_bytes",
        "create_volume",
        "add_item",
        "move_item",
        "volume",
    }
) | MUTATOR_METHODS


@_register
class CrossArrayAccessRule(Rule):
    """R10: hardcoded foreign-array names outside :mod:`repro.fleet`."""

    rule_id = "R10"
    name = "cross-array-access"
    summary = (
        "array-qualified component names ('array-01:enc-00') are owned "
        "by the fleet router; code outside repro.fleet must derive them "
        "via HashRouter/array_name, never hardcode another array's "
        "namespace"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag storage calls passing a literal array-namespaced name."""
        if _FLEET_OWNER_PACKAGE in ctx.posix_path:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method not in _ARRAY_ACCESS_METHODS:
                continue
            arguments = [*node.args, *[kw.value for kw in node.keywords]]
            for argument in arguments:
                if not (
                    isinstance(argument, ast.Constant)
                    and isinstance(argument.value, str)
                    and _ARRAY_NAME_PATTERN.search(argument.value)
                ):
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"call to {method}() hardcodes the array-namespaced "
                    f"name {argument.value!r} — item/enclosure ownership "
                    "belongs to repro.fleet.routing; resolve names "
                    "through the HashRouter instead of baking in "
                    "another array's namespace",
                )


# ---------------------------------------------------------------------------
# R11: tier placement mutated outside the action layer
# ---------------------------------------------------------------------------

#: Modules that *define* the tier mutators: the controller implements
#: the moves (and the replicate path calls the virtualization's replica
#: bookkeeping on itself), so self-calls there are implementation, not
#: bypass.
_TIER_MUTATION_OWNER_FILES = (
    "repro/storage/controller.py",
    "repro/storage/virtualization.py",
)

#: Tier-placement mutators: inter-tier item moves on the controller and
#: the replica bookkeeping on the virtualization layer.  Disjoint from
#: :data:`MUTATOR_METHODS` so every lint fixture trips exactly one rule;
#: a call site can violate R9 *or* R11, never both for the same method.
TIER_MUTATOR_METHODS = frozenset(
    {
        "promote_item",
        "demote_item",
        "archive_item",
        "replicate_item",
        "add_replica",
        "remove_replica",
    }
)


@_register
class TierMutationRule(Rule):
    """R11: tier-placement mutators called outside ``repro.actions``."""

    rule_id = "R11"
    name = "tier-mutation"
    summary = (
        "inter-tier moves (promote/demote/archive/replicate) and replica "
        "bookkeeping are applied only by the repro.actions executor; "
        "direct calls bypass the action log, the per-tier ledger, and "
        "the auditor's conservation checks"
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        """Flag tier-mutator calls outside the action layer."""
        path = ctx.posix_path
        if _MUTATION_OWNER_PACKAGE in path:
            return
        if any(path.endswith(p) for p in _TIER_MUTATION_OWNER_FILES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method not in TIER_MUTATOR_METHODS:
                continue
            yield self.violation(
                ctx,
                node,
                f"direct call to {method}() — tier placement changes go "
                "through a PromoteItem/DemoteItem/ArchiveItem/"
                "ReplicateItem plan applied by the repro.actions "
                "executor, which records, gates, and costs them",
            )


def resolve_rules(selectors: Iterable[str] | None = None) -> list[Rule]:
    """Resolve selectors (ids or names) to rule objects; all by default."""
    if not selectors:
        return list(RULES.values())
    by_name = {rule.name: rule for rule in RULES.values()}
    chosen: list[Rule] = []
    for selector in selectors:
        rule = RULES.get(selector.upper()) or by_name.get(selector.lower())
        if rule is None:
            known = ", ".join([*RULES, *by_name])
            raise ValidationError(
                f"unknown lint rule {selector!r} (known: {known})"
            )
        if rule not in chosen:
            chosen.append(rule)
    return chosen


RuleFactory = Callable[[], Rule]
