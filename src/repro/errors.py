"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class StorageError(ReproError):
    """Base class for storage-substrate errors."""


class CapacityError(StorageError):
    """An enclosure or cache partition would exceed its capacity."""


class MappingError(StorageError):
    """A logical address does not map to any physical location."""


class PowerStateError(StorageError):
    """An illegal power-state transition was requested."""


class TraceError(ReproError):
    """A trace file or record stream is malformed."""


class ReplayError(ReproError):
    """The trace replayer was driven incorrectly (e.g. time went backwards)."""


class PlacementError(ReproError):
    """The data-placement algorithms could not satisfy their constraints."""


class WorkloadError(ReproError):
    """A workload generator was given unsatisfiable parameters."""
