"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument value is out of range or otherwise invalid.

    Derives from :class:`ValueError` so callers that guard individual
    calls with ``except ValueError`` keep working, while package-wide
    ``except ReproError`` handlers see it too.
    """


class UsageError(ReproError, RuntimeError):
    """An object was driven outside its documented protocol.

    Examples: reading a measurement that was never enabled, or running a
    policy that was never bound to a simulation context.  Derives from
    :class:`RuntimeError` for backwards compatibility.
    """


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class StorageError(ReproError):
    """Base class for storage-substrate errors."""


class CapacityError(StorageError):
    """An enclosure or cache partition would exceed its capacity."""


class MappingError(StorageError):
    """A logical address does not map to any physical location."""


class PowerStateError(StorageError):
    """An illegal power-state transition was requested."""


class TraceError(ReproError):
    """A trace file or record stream is malformed."""


class ReplayError(ReproError):
    """The trace replayer was driven incorrectly (e.g. time went backwards)."""


class PlacementError(ReproError):
    """The data-placement algorithms could not satisfy their constraints."""


class WorkloadError(ReproError):
    """A workload generator was given unsatisfiable parameters."""


class ExperimentError(ReproError):
    """An experiment cell could not be completed.

    Raised by :mod:`repro.experiments.parallel` when a sweep cell fails
    (its worker raised) and the caller asks for the cell's result anyway,
    or when a cell specification does not resolve to a known workload or
    policy.  The message carries the failed cell's label and, for worker
    failures, the remote traceback.
    """


class AuditError(ReproError):
    """A runtime invariant of the simulation was violated.

    Raised by :class:`repro.devtools.audit.InvariantAuditor` when energy
    accounting, capacity accounting, or time monotonicity breaks.  The
    message carries a dump of the violating state so the failure is
    diagnosable without re-running under a debugger.
    """
