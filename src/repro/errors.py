"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument value is out of range or otherwise invalid.

    Derives from :class:`ValueError` so callers that guard individual
    calls with ``except ValueError`` keep working, while package-wide
    ``except ReproError`` handlers see it too.
    """


class UsageError(ReproError, RuntimeError):
    """An object was driven outside its documented protocol.

    Examples: reading a measurement that was never enabled, or running a
    policy that was never bound to a simulation context.  Derives from
    :class:`RuntimeError` for backwards compatibility.
    """


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class StorageError(ReproError):
    """Base class for storage-substrate errors."""


class CapacityError(StorageError):
    """An enclosure or cache partition would exceed its capacity."""


class MappingError(StorageError):
    """A logical address does not map to any physical location."""


class PowerStateError(StorageError):
    """An illegal power-state transition was requested."""


class FaultError(StorageError):
    """Base class for injected-fault conditions (:mod:`repro.faults`).

    These model *hardware* misbehaviour scheduled by a
    :class:`~repro.faults.plan.FaultPlan`; the storage controller
    catches them and degrades gracefully (retry, re-route, buffer),
    so they normally never escape a replay.
    """


class SpinUpFailedError(FaultError):
    """A spin-up attempt failed (transient); the caller should retry.

    The failed attempt's time and energy have already been charged to
    the enclosure's timeline — retrying is not free.
    """

    def __init__(self, enclosure: str, at: float) -> None:
        super().__init__(
            f"spin-up of enclosure {enclosure!r} failed at t={at:.3f}s"
        )
        self.enclosure = enclosure
        self.at = at


class EnclosureUnavailableError(FaultError):
    """An enclosure is inside an injected outage window.

    ``until`` is the virtual time the outage ends; the caller can wait
    it out (delaying the I/O) or serve the request elsewhere.
    """

    def __init__(self, enclosure: str, at: float, until: float) -> None:
        super().__init__(
            f"enclosure {enclosure!r} unavailable at t={at:.3f}s "
            f"(outage until t={until:.3f}s)"
        )
        self.enclosure = enclosure
        self.at = at
        self.until = until


class MigrationAbortedError(FaultError):
    """A data-item migration was aborted mid-transfer by fault injection.

    Raised *before* any placement book is mutated: the item stays on its
    source enclosure and per-enclosure used-bytes are untouched, so the
    migration engine only has to count the abort and move on.
    """

    def __init__(self, item_id: str, at: float) -> None:
        super().__init__(
            f"migration of item {item_id!r} aborted at t={at:.3f}s"
        )
        self.item_id = item_id
        self.at = at


class TraceError(ReproError):
    """A trace file or record stream is malformed."""


class SnapshotError(ReproError):
    """A simulation snapshot file is unusable (:mod:`repro.persistence`).

    Raised when a snapshot's magic, version, length, or checksum does
    not verify, or its payload fails to decode — a torn write, a
    truncated copy, or bit rot.  The loader refuses the file outright;
    no state is ever partially restored from a bad snapshot.
    """


class ReplayError(ReproError):
    """The trace replayer was driven incorrectly (e.g. time went backwards)."""


class PlacementError(ReproError):
    """The data-placement algorithms could not satisfy their constraints."""


class WorkloadError(ReproError):
    """A workload generator was given unsatisfiable parameters."""


class ExperimentError(ReproError):
    """An experiment cell could not be completed.

    Raised by :mod:`repro.experiments.parallel` when a sweep cell fails
    (its worker raised) and the caller asks for the cell's result anyway,
    or when a cell specification does not resolve to a known workload or
    policy.  The message carries the failed cell's label and, for worker
    failures, the remote traceback.
    """


class AuditError(ReproError):
    """A runtime invariant of the simulation was violated.

    Raised by :class:`repro.devtools.audit.InvariantAuditor` when energy
    accounting, capacity accounting, or time monotonicity breaks.  The
    message carries a dump of the violating state so the failure is
    diagnosable without re-running under a debugger.
    """
