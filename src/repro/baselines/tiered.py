"""Temperature-driven lifecycle policy over typed storage tiers.

:class:`TieredLifecyclePolicy` manages a FLASH / HDD / ARCHIVE array
(:func:`repro.simulation.build_tiered_context`) with a per-item
*temperature*: an exponentially-decayed access count whose half-life is
``tier_half_life``.  Each checkpoint classifies every item —

* **HOT** (temperature ≥ ``tier_hot_temperature``) → promote to flash;
* **WARM** (between the thresholds) → keep (or demote back) on HDD;
* **COLD** (below ``tier_cold_temperature``) → demote off flash; after
  ``tier_frozen_periods`` consecutive COLD windows the item is
  **FROZEN** → move to the archive tier;

and composes the paper's §IV-C hot/cold enclosure determination
(:mod:`repro.core.hotcold`) over the *HDD* devices: HOT/WARM items
count as P3 load, the split picks the HDD enclosures that must stay
powered, and power-off is enabled on the rest — so the single-tier
energy machinery keeps working underneath the tier moves.

All placement mutations travel as :class:`~repro.actions.plan.ActionPlan`
values through the context executor (lint rules R9/R11): every
inter-tier move is an auditable
:class:`~repro.actions.records.ActionRecord`.  An archived item that is
accessed (paying the archive shelf's long spin-up) is promoted back to
HDD at the next checkpoint — the invariant auditor proves no archived
copy keeps serving I/O without a promote record.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.actions.plan import ActionPlan
from repro.actions.records import (
    Action,
    ArchiveItem,
    DemoteItem,
    PromoteItem,
    ReplicateItem,
)
from repro.baselines.base import PowerPolicy
from repro.core.hotcold import choose_hot_cold, required_hot_count
from repro.core.intervals import ItemActivity
from repro.core.patterns import (
    DEFAULT_IOPS_BUCKET_SECONDS,
    IOPattern,
    ItemProfile,
)
from repro.storage.virtualization import BlockVirtualization
from repro.trace.records import IOType, LogicalIORecord

#: Tier names :func:`repro.simulation.build_tiered_context` wires up.
FLASH_TIER = "flash"
HDD_TIER = "hdd"
ARCHIVE_TIER = "archive"


class TieredLifecyclePolicy(PowerPolicy):
    """Hot→flash / warm→HDD / frozen→archive temperature lifecycle."""

    name = "tiered-lifecycle"

    def __init__(
        self,
        monitoring_period: float | None = None,
        half_life: float | None = None,
        replicate_hot: bool = False,
    ) -> None:
        """``replicate_hot`` additionally keeps an HDD replica of the
        hottest flash-resident item, so a flash device loss cannot lose
        the busiest data (exercises the replicate action end-to-end)."""
        super().__init__()
        self.monitoring_period = monitoring_period
        self.half_life = half_life
        self.replicate_hot = replicate_hot
        self._next_checkpoint: float | None = None
        self._window_start = 0.0
        self._temperature: dict[str, float] = {}
        self._window_counts: defaultdict[str, int] = defaultdict(int)
        self._window_buckets: defaultdict[str, defaultdict[int, int]] = (
            defaultdict(lambda: defaultdict(int))
        )
        self._cold_streak: defaultdict[str, int] = defaultdict(int)
        self._preferred_hot: set[str] = set()

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> None:
        """Read config defaults, arm archive power-off, start the window."""
        context = self._require_context()
        config = context.config
        if self.monitoring_period is None:
            self.monitoring_period = config.tier_monitoring_period
        if self.half_life is None:
            self.half_life = config.tier_half_life
        self._window_start = now
        self._next_checkpoint = now + self.monitoring_period
        # The archive shelf should spend its life off; flash ignores
        # enablement entirely; HDD enablement follows the per-window
        # hot/cold split.
        virt = context.virtualization
        if ARCHIVE_TIER in virt.tier_names:
            for device in virt.devices_in_tier(ARCHIVE_TIER):
                self.apply_power_off(virt.enclosure(device), now, True)

    def next_checkpoint(self) -> float | None:
        """Time of the next lifecycle checkpoint."""
        return self._next_checkpoint

    # ------------------------------------------------------------------
    def after_io(self, record: LogicalIORecord, response_time: float) -> None:
        """Record-pump variant: defer to the scalar accumulator."""
        self.after_io_fast(
            record.timestamp,
            record.item_id,
            record.offset,
            record.size,
            record.io_type is IOType.READ,
            record.sequential,
            response_time,
        )

    def after_io_fast(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
        response_time: float,
    ) -> None:
        """Count the access for this window's temperatures and buckets."""
        self._window_counts[item_id] += 1
        bucket = int(
            (timestamp - self._window_start) // DEFAULT_IOPS_BUCKET_SECONDS
        )
        self._window_buckets[item_id][bucket] += 1

    # ------------------------------------------------------------------
    def on_checkpoint(self, now: float) -> ActionPlan | None:
        """Age temperatures, classify, and plan the tier moves."""
        context = self._require_context()
        virt = context.virtualization
        config = context.config
        period = now - self._window_start
        if period <= 0:
            self._schedule_next(now)
            return None
        assert self.half_life is not None
        decay = 0.5 ** (period / self.half_life)

        # Age every placed item's temperature and fold in this window.
        hot: set[str] = set()
        frozen: set[str] = set()
        cold: set[str] = set()
        for item in virt.item_ids():
            temperature = self._temperature.get(item, 0.0) * decay
            temperature += self._window_counts.get(item, 0)
            self._temperature[item] = temperature
            if temperature >= config.tier_hot_temperature:
                hot.add(item)
                self._cold_streak[item] = 0
            elif temperature < config.tier_cold_temperature:
                cold.add(item)
                self._cold_streak[item] += 1
                if self._cold_streak[item] >= config.tier_frozen_periods:
                    frozen.add(item)
            else:
                self._cold_streak[item] = 0
        self.determinations += 1

        actions = self._plan_tier_moves(virt, hot, cold, frozen)
        plan = ActionPlan(actions)
        self.executor().apply(now, plan)

        self._split_hdd_enclosures(now, hot, period)

        self._window_counts.clear()
        self._window_buckets.clear()
        self._window_start = now
        self._schedule_next(now)
        return plan

    def _plan_tier_moves(
        self,
        virt: BlockVirtualization,
        hot: set[str],
        cold: set[str],
        frozen: set[str],
    ) -> list[Action]:
        """Build the checkpoint's promote/demote/archive action list."""
        tier_names = set(virt.tier_names)
        actions: list[Action] = []

        # Archived items that served I/O must come back up: the archive
        # tier is for frozen data, and the auditor requires a promote
        # record for every archive-serviced item.
        if ARCHIVE_TIER in tier_names:
            for item in sorted(
                self._require_context().controller.archive_serviced_items
            ):
                if virt.tier_of_item(item).name == ARCHIVE_TIER:
                    actions.append(PromoteItem(item, HDD_TIER))
                    frozen.discard(item)
                    self._cold_streak[item] = 0

        # HOT → flash, hottest first, bounded by the tier's free bytes
        # (the executor re-checks per device; this guard just avoids
        # planning promotions that cannot possibly fit).
        if FLASH_TIER in tier_names:
            flash_free = sum(
                virt.free_bytes(device)
                for device in virt.devices_in_tier(FLASH_TIER)
            )
            for item in sorted(
                hot, key=lambda i: (-self._temperature[i], i)
            ):
                if virt.tier_of_item(item).name == FLASH_TIER:
                    continue
                size = virt.item_size(item)
                if size > flash_free:
                    continue
                flash_free -= size
                actions.append(PromoteItem(item, FLASH_TIER))
            if self.replicate_hot:
                actions.extend(self._plan_hot_replica(virt, hot))

        # Anything on flash that is no longer HOT goes back to HDD.
        for device in (
            virt.devices_in_tier(FLASH_TIER)
            if FLASH_TIER in tier_names
            else ()
        ):
            for item in sorted(virt.items_on(device)):
                if item not in hot:
                    actions.append(DemoteItem(item, HDD_TIER))

        # FROZEN → archive, coldest first, bounded by archive free bytes.
        if ARCHIVE_TIER in tier_names:
            archive_free = sum(
                virt.free_bytes(device)
                for device in virt.devices_in_tier(ARCHIVE_TIER)
            )
            for item in sorted(
                frozen, key=lambda i: (self._temperature[i], i)
            ):
                if virt.tier_of_item(item).name == ARCHIVE_TIER:
                    continue
                size = virt.item_size(item)
                if size > archive_free:
                    continue
                archive_free -= size
                actions.append(ArchiveItem(item))
        return actions

    def _plan_hot_replica(
        self, virt: BlockVirtualization, hot: set[str]
    ) -> list[Action]:
        """Replicate the hottest flash-resident item onto HDD (opt-in)."""
        candidates = sorted(
            (
                item
                for item in hot
                if virt.tier_of_item(item).name == FLASH_TIER
                and not virt.replicas_of(item)
            ),
            key=lambda i: (-self._temperature[i], i),
        )
        if not candidates:
            return []
        return [ReplicateItem(candidates[0], HDD_TIER)]

    def _split_hdd_enclosures(
        self, now: float, hot: set[str], period: float
    ) -> None:
        """§IV-C hot/cold split over the HDD devices; set power-off."""
        context = self._require_context()
        virt = context.virtualization
        config = context.config
        hdd_devices = virt.devices_in_tier(HDD_TIER)
        profiles: dict[str, ItemProfile] = {}
        bucket_seconds = DEFAULT_IOPS_BUCKET_SECONDS
        for device in hdd_devices:
            for item in virt.items_on(device):
                counts = self._window_buckets.get(item, {})
                bucket_count = max(1, math.ceil(period / bucket_seconds))
                bucket_counts = tuple(
                    counts.get(index, 0) for index in range(bucket_count)
                )
                io_count = self._window_counts.get(item, 0)
                profiles[item] = ItemProfile(
                    item_id=item,
                    pattern=IOPattern.P3 if item in hot else IOPattern.P0,
                    activity=ItemActivity(
                        item_id=item,
                        window_start=self._window_start,
                        window_end=now,
                        long_intervals=(),
                        sequences=(),
                    ),
                    size_bytes=virt.item_size(item),
                    enclosure=device,
                    mean_iops=io_count / period,
                    peak_iops=(
                        max(counts.values()) / bucket_seconds
                        if counts
                        else 0.0
                    ),
                    bucket_counts=bucket_counts,
                    read_count=io_count,
                    write_count=0,
                    write_bytes=0,
                    read_bytes=0,
                )
        n_hot, i_max = required_hot_count(
            profiles,
            config.max_iops_random,
            config.enclosure_size_bytes,
            bucket_seconds,
        )
        split = choose_hot_cold(
            profiles,
            hdd_devices,
            n_hot,
            i_max,
            preferred_hot=self._preferred_hot,
        )
        self._preferred_hot = set(split.hot)
        for device in hdd_devices:
            self.apply_power_off(
                virt.enclosure(device), now, split.is_cold(device)
            )

    def _schedule_next(self, now: float) -> None:
        assert self.monitoring_period is not None
        self._next_checkpoint = now + self.monitoring_period

    # ------------------------------------------------------------------
    def on_end(self, now: float) -> None:
        """Final sweep: promote any still-archived serviced items.

        Runs before the kernel's finish hooks, so the invariant
        auditor's end-of-run archive-service check sees the promote
        records this plans.
        """
        context = self._require_context()
        virt = context.virtualization
        if ARCHIVE_TIER not in virt.tier_names:
            return
        actions: list[Action] = [
            PromoteItem(item, HDD_TIER)
            for item in sorted(context.controller.archive_serviced_items)
            if virt.tier_of_item(item).name == ARCHIVE_TIER
        ]
        if actions:
            self.executor().apply(now, ActionPlan(actions))

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Temperatures, streaks, and window cursors, on the base state."""
        state = super().snapshot_state()
        state.update(
            monitoring_period=self.monitoring_period,
            half_life=self.half_life,
            replicate_hot=self.replicate_hot,
            next_checkpoint=self._next_checkpoint,
            window_start=self._window_start,
            temperature=sorted(self._temperature.items()),
            window_counts=sorted(self._window_counts.items()),
            window_buckets=sorted(
                (item, sorted(buckets.items()))
                for item, buckets in self._window_buckets.items()
            ),
            cold_streak=sorted(self._cold_streak.items()),
            preferred_hot=sorted(self._preferred_hot),
        )
        return state

    def restore_state(self, state: dict) -> None:
        """Restore the policy exactly as :meth:`snapshot_state` captured it."""
        super().restore_state(state)
        self.monitoring_period = state["monitoring_period"]
        self.half_life = state["half_life"]
        self.replicate_hot = state["replicate_hot"]
        self._next_checkpoint = state["next_checkpoint"]
        self._window_start = state["window_start"]
        self._temperature = dict(state["temperature"])
        self._window_counts = defaultdict(int, dict(state["window_counts"]))
        self._window_buckets = defaultdict(lambda: defaultdict(int))
        for item, buckets in state["window_buckets"]:
            self._window_buckets[item] = defaultdict(int, dict(buckets))
        self._cold_streak = defaultdict(int, dict(state["cold_streak"]))
        self._preferred_hot = set(state["preferred_hot"])
