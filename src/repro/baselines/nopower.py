"""The "without power saving" reference configuration.

Enclosures never spin down; the storage serves I/O exactly as the
workload issues it.  This is the paper's left-most bar in every power
figure and the performance reference for the tpmC / query-response
conversions (§VII-A.5).
"""

from __future__ import annotations

from repro.actions.plan import ActionPlan
from repro.actions.records import SetPowerOffEnabled
from repro.baselines.base import PowerPolicy


class NoPowerSavingPolicy(PowerPolicy):
    """Do nothing: all enclosures stay powered, no migration, no cache
    reconfiguration."""

    name = "no-power-saving"

    def on_start(self, now: float) -> None:
        """Disable power-off on every enclosure (always-on baseline)."""
        context = self._require_context()
        self.executor().apply(
            now,
            ActionPlan(
                [
                    SetPowerOffEnabled(enclosure.name, False)
                    for enclosure in context.enclosures
                ]
            ),
        )

    def next_checkpoint(self) -> float | None:
        """Always ``None``: this baseline has no checkpoints."""
        return None

    def on_checkpoint(self, now: float) -> ActionPlan | None:  # pragma: no cover
        """Never called; the policy schedules no checkpoints."""
        raise AssertionError("no-power-saving policy has no checkpoints")
