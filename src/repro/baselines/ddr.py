"""Dynamic Data Reorganization (DDR) baseline.

Otoo, Rotem & Tsao's DDR [15] as the paper evaluates it (§VII-A.1): a
*physical* I/O-behaviour-based method.  Every short monitoring period
(sub-second — the paper reports ~90 000 placement determinations per
run) it classifies disk enclosures by their served IOPS against two
thresholds derived from ``TargetTH`` (Table II: 450 IOPS):

* enclosures whose smoothed IOPS falls below ``LowTH = TargetTH / 2``
  are *cold*: they may spin down, and physical blocks accessed on them
  are migrated to hot enclosures ("DDR only migrates physical blocks in
  cold disk enclosures to hot disk enclosures when the physical blocks
  ... are accessed");
* the rest are *hot* and stay powered.

Block moves are charged as migration I/O and counted in the
migrated-bytes figure.  The block-grained remapping itself is not
simulated: our virtualization is item-grained, and the traces touch so
wide an address space that re-accessing a just-moved block is rare —
which is also why the paper measures DDR's migrated volume in single
gigabytes (see EXPERIMENTS.md, "Substitutions").
"""

from __future__ import annotations

from repro.actions.plan import ActionPlan
from repro.actions.records import ChargeBlockMigration, SetPowerOffEnabled
from repro.errors import ValidationError
from repro.baselines.base import PowerPolicy
from repro.trace.records import LogicalIORecord


class DDRPolicy(PowerPolicy):
    """Threshold-based physical reorganization with spin-down."""

    name = "ddr"

    def __init__(
        self,
        monitoring_period: float | None = None,
        target_th: float | None = None,
        iops_smoothing_seconds: float = 60.0,
    ) -> None:
        super().__init__()
        if iops_smoothing_seconds <= 0:
            raise ValidationError("iops_smoothing_seconds must be positive")
        self.monitoring_period = monitoring_period
        self.target_th = target_th
        self.iops_smoothing_seconds = iops_smoothing_seconds
        self._next_checkpoint: float | None = None
        self._window_start = 0.0
        self._smoothed_iops: dict[str, float] = {}
        self._cold: set[str] = set()
        self.blocks_migrated = 0

    @property
    def low_th(self) -> float:
        """Lower IOPS threshold (half the configured target)."""
        assert self.target_th is not None
        return self.target_th / 2.0

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> None:
        """Read DDR thresholds from the config and start the first window."""
        context = self._require_context()
        if self.monitoring_period is None:
            self.monitoring_period = context.config.ddr_monitoring_period
        if self.target_th is None:
            self.target_th = context.config.ddr_target_th
        self._next_checkpoint = now + self.monitoring_period
        self._window_start = now
        self._smoothed_iops = {
            name: 0.0 for name in context.virtualization.enclosure_names
        }
        # Nothing is cold until measured.
        self.executor().apply(
            now,
            ActionPlan(
                [
                    SetPowerOffEnabled(enclosure.name, False)
                    for enclosure in context.enclosures
                ]
            ),
        )

    def next_checkpoint(self) -> float | None:
        """Time of the next DDR monitoring checkpoint."""
        return self._next_checkpoint

    def on_checkpoint(self, now: float) -> ActionPlan | None:
        """Rebalance data across gears from the window's IOPS profile."""
        context = self._require_context()
        window = now - self._window_start
        assert self.monitoring_period is not None
        if window <= 0:
            self._next_checkpoint = now + self.monitoring_period
            return None
        stats = context.storage_monitor.window_stats(now)
        # Exponentially smoothed IOPS with ~iops_smoothing_seconds
        # time constant: DDR's placement decisions are sub-second but
        # its hot/cold judgement reflects sustained load, otherwise any
        # quiet quarter-second would flap every enclosure cold.
        alpha = min(1.0, window / self.iops_smoothing_seconds)
        cold: set[str] = set()
        for name, stat in stats.items():
            previous = self._smoothed_iops.get(name, 0.0)
            smoothed = (1 - alpha) * previous + alpha * stat.iops
            self._smoothed_iops[name] = smoothed
            if smoothed < self.low_th:
                cold.add(name)
        self.determinations += 1

        # Power-off decisions go through the executor's degraded-mode
        # gate: a cold enclosure whose spin-ups keep failing is vetoed
        # for a cool-down window (repro.faults); without faults the gate
        # is a pass-through.  Enclosures neither newly cold nor leaving
        # the cold set are left untouched, exactly as before.
        plan = ActionPlan()
        for enclosure in context.enclosures:
            if enclosure.name in cold:
                plan.add(SetPowerOffEnabled(enclosure.name, True))
            elif enclosure.name in self._cold:
                plan.add(SetPowerOffEnabled(enclosure.name, False))
        self.executor().apply(now, plan)
        self._cold = cold

        context.storage_monitor.begin_window(now)
        self._window_start = now
        self._next_checkpoint = now + self.monitoring_period
        return plan or None

    def after_io(self, record: LogicalIORecord, response_time: float) -> None:
        """On access to data on a cold enclosure, migrate those blocks.

        The copy is charged to the source (read) and the least-loaded
        hot enclosure (write) and counted as migrated data.
        """
        self._on_access(record.timestamp, record.item_id, record.size)

    def after_io_fast(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
        response_time: float,
    ) -> None:
        """Scalar variant: the on-access migration check needs only
        timestamp, item id, and size."""
        self._on_access(timestamp, item_id, size)

    def _on_access(self, now: float, item_id: str, size: int) -> None:
        context = self._require_context()
        if not self._cold:
            return
        virt = context.virtualization
        source = virt.enclosure_of(item_id)
        if source.name not in self._cold:
            return
        hot = [
            name
            for name in virt.enclosure_names
            if name not in self._cold
        ]
        if not hot:
            return
        target_name = min(hot, key=lambda n: self._smoothed_iops.get(n, 0.0))
        self.executor().apply(
            now,
            ActionPlan(
                [
                    ChargeBlockMigration(
                        item_id,
                        size,
                        source.name,
                        target_name,
                    )
                ]
            ),
        )
        self.blocks_migrated += 1

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Thresholds, window cursor, and smoothed-IOPS books."""
        state = super().snapshot_state()
        state.update(
            monitoring_period=self.monitoring_period,
            target_th=self.target_th,
            next_checkpoint=self._next_checkpoint,
            window_start=self._window_start,
            smoothed_iops=dict(self._smoothed_iops),
            cold=sorted(self._cold),
            blocks_migrated=self.blocks_migrated,
        )
        return state

    def restore_state(self, state: dict) -> None:
        """Restore the policy exactly as :meth:`snapshot_state` captured it."""
        super().restore_state(state)
        self.monitoring_period = state["monitoring_period"]
        self.target_th = state["target_th"]
        self._next_checkpoint = state["next_checkpoint"]
        self._window_start = state["window_start"]
        self._smoothed_iops = dict(state["smoothed_iops"])
        self._cold = set(state["cold"])
        self.blocks_migrated = state["blocks_migrated"]
