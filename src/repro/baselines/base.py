"""Power-policy interface shared by the proposed method and baselines.

A :class:`PowerPolicy` plugs into the simulation kernel
(:mod:`repro.engine`): it asks for control at *checkpoints* (the end of
its monitoring periods) and may also react to individual I/Os (the
proposed method's §V-D triggers; DDR's on-access block migration).  All
four evaluated methods — the proposed energy-efficient storage
management, PDC, DDR, and no-power-saving — implement this interface,
so the experiment runner treats them uniformly.

Checkpoint contract under the kernel: :meth:`PowerPolicy.next_checkpoint`
is re-read at the only points its value may change — once at start
(after :meth:`PowerPolicy.on_start`), after every
:meth:`PowerPolicy.after_io`, and after every
:meth:`PowerPolicy.on_checkpoint` — and mirrored as a single scheduled
:class:`~repro.engine.events.PolicyCheckpointEvent`.  A policy must
advance its checkpoint strictly past ``now`` inside ``on_checkpoint``
(the kernel raises :class:`~repro.errors.ReplayError` otherwise) and
should only ever schedule into the future; checkpoints in the past
would rewind the kernel's monotonic clock.
"""

from __future__ import annotations

import abc

from repro.errors import UsageError
from repro.simulation import SimulationContext
from repro.storage.enclosure import DiskEnclosure
from repro.trace.records import LogicalIORecord


class PowerPolicy(abc.ABC):
    """Base class for storage power-saving policies."""

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self.context: SimulationContext | None = None
        #: Number of data-placement determinations performed — the paper
        #: reports this count for every method (§VII-D).
        self.determinations = 0
        #: Per-enclosure end times of degraded-mode cool-down windows.
        self._cooldown_until: dict[str, float] = {}
        #: Times degraded mode vetoed a power-off enablement.
        self.degraded_cooldowns = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, context: SimulationContext) -> None:
        """Attach the policy to a simulation (called once, before start)."""
        self.context = context

    def _require_context(self) -> SimulationContext:
        if self.context is None:
            raise UsageError(f"policy {self.name!r} is not bound to a context")
        return self.context

    def on_start(self, now: float) -> None:
        """Called once at replay start (time ``now``, usually 0)."""

    # ------------------------------------------------------------------
    # degraded-mode power-off gate (repro.faults)
    # ------------------------------------------------------------------
    def apply_power_off(
        self, enclosure: DiskEnclosure, now: float, enable: bool
    ) -> bool:
        """Enable/disable power-off on one enclosure through the
        degraded-mode gate; returns whether power-off ended up enabled.

        Every policy routes its power-off decisions through here.  When
        an enclosure's recent spin-up failures (within
        ``config.spin_up_failure_window``) reach
        ``config.spin_up_failure_threshold``, the enclosure enters a
        cool-down of ``config.power_off_cooldown`` seconds during which
        enablement is vetoed — a drive that keeps failing to spin up
        should not keep being spun down.  Without fault injection there
        are no recorded failures and the gate is a transparent
        pass-through, so zero-fault behaviour is unchanged.
        """
        if not enable:
            enclosure.disable_power_off(now)
            return False
        until = self._cooldown_until.get(enclosure.name, 0.0)
        if now < until:
            enclosure.disable_power_off(now)
            return False
        failures = enclosure.spin_up_failure_times
        if failures:
            config = self._require_context().config
            window_start = now - config.spin_up_failure_window
            recent = sum(1 for t in failures if t >= window_start)
            if recent >= config.spin_up_failure_threshold:
                self._cooldown_until[enclosure.name] = (
                    now + config.power_off_cooldown
                )
                self.degraded_cooldowns += 1
                enclosure.disable_power_off(now)
                return False
        enclosure.enable_power_off(now)
        return True

    @abc.abstractmethod
    def next_checkpoint(self) -> float | None:
        """Next time the policy wants control, or None for never.

        The kernel keeps one live checkpoint event mirroring this value;
        returning a new time (or None) from here takes effect at the
        next sync point (after ``after_io`` / ``on_checkpoint``).
        """

    @abc.abstractmethod
    def on_checkpoint(self, now: float) -> None:
        """End of a monitoring period: analyse, decide, reconfigure.

        Must leave :meth:`next_checkpoint` strictly greater than ``now``
        (or None); the kernel enforces this to rule out checkpoint
        storms that would stall virtual time.
        """

    def after_io(self, record: LogicalIORecord, response_time: float) -> None:
        """Called after each application I/O has been served."""

    def on_end(self, now: float) -> None:
        """Called once after the last record, before final settlement."""
