"""Power-policy interface shared by the proposed method and baselines.

A :class:`PowerPolicy` plugs into the trace replayer: it asks for control
at *checkpoints* (the end of its monitoring periods) and may also react
to individual I/Os (the proposed method's §V-D triggers; DDR's on-access
block migration).  All four evaluated methods — the proposed energy-
efficient storage management, PDC, DDR, and no-power-saving — implement
this interface, so the experiment runner treats them uniformly.
"""

from __future__ import annotations

import abc

from repro.errors import UsageError
from repro.simulation import SimulationContext
from repro.trace.records import LogicalIORecord


class PowerPolicy(abc.ABC):
    """Base class for storage power-saving policies."""

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self.context: SimulationContext | None = None
        #: Number of data-placement determinations performed — the paper
        #: reports this count for every method (§VII-D).
        self.determinations = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, context: SimulationContext) -> None:
        """Attach the policy to a simulation (called once, before start)."""
        self.context = context

    def _require_context(self) -> SimulationContext:
        if self.context is None:
            raise UsageError(f"policy {self.name!r} is not bound to a context")
        return self.context

    def on_start(self, now: float) -> None:
        """Called once at replay start (time ``now``, usually 0)."""

    @abc.abstractmethod
    def next_checkpoint(self) -> float | None:
        """Next time the policy wants control, or None for never."""

    @abc.abstractmethod
    def on_checkpoint(self, now: float) -> None:
        """End of a monitoring period: analyse, decide, reconfigure."""

    def after_io(self, record: LogicalIORecord, response_time: float) -> None:
        """Called after each application I/O has been served."""

    def on_end(self, now: float) -> None:
        """Called once after the last record, before final settlement."""
