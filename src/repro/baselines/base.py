"""Power-policy interface shared by the proposed method and baselines.

A :class:`PowerPolicy` plugs into the simulation kernel
(:mod:`repro.engine`): it asks for control at *checkpoints* (the end of
its monitoring periods) and may also react to individual I/Os (the
proposed method's §V-D triggers; DDR's on-access block migration).  All
four evaluated methods — the proposed energy-efficient storage
management, PDC, DDR, and no-power-saving — implement this interface,
so the experiment runner treats them uniformly.

Checkpoint contract under the kernel: :meth:`PowerPolicy.next_checkpoint`
is re-read at the only points its value may change — once at start
(after :meth:`PowerPolicy.on_start`), after every
:meth:`PowerPolicy.after_io`, and after every
:meth:`PowerPolicy.on_checkpoint` — and mirrored as a single scheduled
:class:`~repro.engine.events.PolicyCheckpointEvent`.  A policy must
advance its checkpoint strictly past ``now`` inside ``on_checkpoint``
(the kernel raises :class:`~repro.errors.ReplayError` otherwise) and
should only ever schedule into the future; checkpoints in the past
would rewind the kernel's monotonic clock.
"""

from __future__ import annotations

import abc

from repro.actions.executor import ActionExecutor
from repro.actions.plan import ActionPlan
from repro.actions.records import ActionOutcome, SetPowerOffEnabled
from repro.errors import UsageError
from repro.simulation import SimulationContext
from repro.storage.enclosure import DiskEnclosure
from repro.trace.records import IOType, LogicalIORecord


class PowerPolicy(abc.ABC):
    """Base class for storage power-saving policies.

    Policies are *planners*: they decide, build
    :class:`~repro.actions.plan.ActionPlan` values, and apply them
    through the context's
    :class:`~repro.actions.executor.ActionExecutor` — never by calling
    controller mutators directly (lint rule R9).
    """

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self.context: SimulationContext | None = None
        #: Number of data-placement determinations performed — the paper
        #: reports this count for every method (§VII-D).
        self.determinations = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, context: SimulationContext) -> None:
        """Attach the policy to a simulation (called once, before start)."""
        self.context = context

    def _require_context(self) -> SimulationContext:
        if self.context is None:
            raise UsageError(f"policy {self.name!r} is not bound to a context")
        return self.context

    def on_start(self, now: float) -> None:
        """Called once at replay start (time ``now``, usually 0)."""

    # ------------------------------------------------------------------
    # executor access (repro.actions)
    # ------------------------------------------------------------------
    def executor(self) -> ActionExecutor:
        """The bound context's action executor — the only mutation path."""
        return self._require_context().require_executor()

    @property
    def degraded_cooldowns(self) -> int:
        """Times the degraded-mode gate vetoed a power-off enablement.

        The gate (and its count) lives on the executor since the
        :mod:`repro.actions` refactor; unbound policies report zero.
        """
        if self.context is None or self.context.executor is None:
            return 0
        return self.context.executor.degraded_cooldowns

    def apply_power_off(
        self, enclosure: DiskEnclosure, now: float, enable: bool
    ) -> bool:
        """Enable/disable power-off on one enclosure through the
        executor's degraded-mode gate; returns whether power-off ended
        up enabled.

        Every policy routes its power-off decisions through here (or
        puts the equivalent :class:`SetPowerOffEnabled` action in a
        larger plan).  When an enclosure's recent spin-up failures reach
        the configured threshold the gate vetoes enablement for a
        cool-down window; without fault injection the gate is a
        transparent pass-through, so zero-fault behaviour is unchanged.
        """
        report = self.executor().apply(
            now, ActionPlan([SetPowerOffEnabled(enclosure.name, enable)])
        )
        record = report.records[0]
        return enable and record.outcome is ActionOutcome.APPLIED

    @abc.abstractmethod
    def next_checkpoint(self) -> float | None:
        """Next time the policy wants control, or None for never.

        The kernel keeps one live checkpoint event mirroring this value;
        returning a new time (or None) from here takes effect at the
        next sync point (after ``after_io`` / ``on_checkpoint``).
        """

    @abc.abstractmethod
    def on_checkpoint(self, now: float) -> ActionPlan | None:
        """End of a monitoring period: analyse, plan, apply.

        Must leave :meth:`next_checkpoint` strictly greater than ``now``
        (or None); the kernel enforces this to rule out checkpoint
        storms that would stall virtual time.  May return the
        :class:`~repro.actions.plan.ActionPlan` the run applied (for
        observability); the kernel ignores the value.
        """

    def after_io(self, record: LogicalIORecord, response_time: float) -> None:
        """Called after each application I/O has been served."""

    def after_io_fast(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
        response_time: float,
    ) -> None:
        """Scalar variant of :meth:`after_io` for the batched replay pump.

        The base implementation materializes a
        :class:`~repro.trace.records.LogicalIORecord` and defers to
        :meth:`after_io`, so a policy that only overrides the record
        hook behaves identically under both pumps.  Policies on the hot
        path override this too and read the fields directly.  The kernel
        skips the call entirely for policies that override neither hook.
        """
        self.after_io(
            LogicalIORecord(
                timestamp=timestamp,
                item_id=item_id,
                offset=offset,
                size=size,
                io_type=IOType.READ if is_read else IOType.WRITE,
                sequential=sequential,
            ),
            response_time,
        )

    def on_end(self, now: float) -> None:
        """Called once after the last record, before final settlement."""

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable planner state (:mod:`repro.persistence`).

        The base captures the determinations counter; stateful policies
        extend the dict (call ``super().snapshot_state()`` first) with
        their window cursors and accumulators.  A restored policy is
        ``bind()``-ed to the rebuilt context but its :meth:`on_start` is
        **not** re-run — the captured state already reflects it.
        """
        return {"determinations": self.determinations}

    def restore_state(self, state: dict) -> None:
        """Restore planner state exactly as :meth:`snapshot_state` captured it."""
        self.determinations = state["determinations"]
