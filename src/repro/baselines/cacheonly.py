"""Cache-only interval control: the §VIII-A related-work baseline.

The paper's related work [6][7][8] enlarges I/O intervals purely at the
device level — buffer writes, prefetch reads, spin disks down — without
knowing anything about applications or data items.  §VIII-A argues this
is weak: "the storage's write function does not recognize the
applications' data items and delays all updated data.  This write
behavior consumes cache space ... since P3 data items are updated at a
high frequency, and shortens the write I/O intervals of cold disk
enclosures"; and for DSS, "these methods cannot decide on an appropriate
size to prefetch.  Therefore, the effect of power-saving by applying
only this method is not so good."

:class:`CacheOnlyPolicy` implements exactly that device-level strategy:

* every enclosure may spin down (no hot/cold knowledge);
* *all* data items are write-delayed — the controller's default
  write-behind, with hot items churning the shared dirty budget and
  forcing frequent bulk flushes everywhere;
* no migration, no preload (nothing knows which items are read-mostly).

It exists to reproduce the paper's argument quantitatively: see
``benchmarks/test_related_work.py``.
"""

from __future__ import annotations

from repro.actions.plan import ActionPlan
from repro.actions.records import EnableWriteDelay, SetPowerOffEnabled
from repro.errors import ValidationError
from repro.baselines.base import PowerPolicy


class CacheOnlyPolicy(PowerPolicy):
    """Device-level interval control: write-behind + spin-down only."""

    name = "cache-only"

    def __init__(self, refresh_period: float = 300.0) -> None:
        super().__init__()
        if refresh_period <= 0:
            raise ValidationError("refresh_period must be positive")
        self.refresh_period = refresh_period
        self._next_checkpoint: float | None = None

    def on_start(self, now: float) -> None:
        """Enable power-off everywhere and write-delay the whole item set."""
        context = self._require_context()
        plan = ActionPlan(
            [
                SetPowerOffEnabled(enclosure.name, True)
                for enclosure in context.enclosures
            ]
        )
        plan.add(self._select_everything())
        self.executor().apply(now, plan)
        self._next_checkpoint = now + self.refresh_period

    def _select_everything(self) -> EnableWriteDelay:
        """Write-delay every placed item — the storage cannot tell a
        busy master table from a dormant archive."""
        context = self._require_context()
        return EnableWriteDelay(
            tuple(context.virtualization.item_ids())
        )

    def next_checkpoint(self) -> float | None:
        """Time of the next periodic cache refresh."""
        return self._next_checkpoint

    def on_checkpoint(self, now: float) -> ActionPlan | None:
        # Re-sweep the item set (new items may have appeared); this is
        # cache housekeeping, not a placement determination.
        """Refresh the write-delay selection for the next period."""
        plan = ActionPlan([self._select_everything()])
        self.executor().apply(now, plan)
        self._next_checkpoint = now + self.refresh_period
        return plan

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Refresh cursor on top of the base state."""
        state = super().snapshot_state()
        state.update(next_checkpoint=self._next_checkpoint)
        return state

    def restore_state(self, state: dict) -> None:
        """Restore the policy exactly as :meth:`snapshot_state` captured it."""
        super().restore_state(state)
        self._next_checkpoint = state["next_checkpoint"]
