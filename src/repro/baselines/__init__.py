"""Power policies: the proposed method's competitors and composition.

Baselines the paper compares against (§VII-A.1) plus the zoned
multi-policy composition from the §IX future-work discussion.
"""

from repro.baselines.base import PowerPolicy
from repro.baselines.ddr import DDRPolicy
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.baselines.pdc import PDCPolicy
from repro.baselines.tiered import TieredLifecyclePolicy
from repro.baselines.zoned import Zone, ZonedPolicy

__all__ = [
    "DDRPolicy",
    "NoPowerSavingPolicy",
    "PDCPolicy",
    "PowerPolicy",
    "TieredLifecyclePolicy",
    "Zone",
    "ZonedPolicy",
]
