"""Popular Data Concentration (PDC) baseline.

Pinheiro & Bianchini's PDC [11] as the paper evaluates it (§VII-A.1):
a *logical* I/O-behaviour-based method that periodically (every 30 min)
ranks files by popularity and concentrates the most popular data on the
first disks, so the tail disks see little traffic and can spin down.
The data unit is "a file, not a data item" — in this codebase the same
object, since our data items are file/table grained.

Two properties the paper leans on emerge naturally from this
implementation:

* PDC re-sorts *everything* every period — it "also moves hot data
  between hot disk enclosures and cold data between cold disk
  enclosures" — which is why its migrated volume exceeds terabytes in
  Figs 10/13 while the proposed method moves only P3 items;
* PDC has no cache assistance, so its response times carry full
  spin-up penalties.
"""

from __future__ import annotations

from collections import defaultdict

from repro.actions.plan import ActionPlan
from repro.actions.records import SetPowerOffEnabled
from repro.errors import ValidationError
from repro.baselines.base import PowerPolicy
from repro.simulation import SimulationContext
from repro.storage.migration import PlacementPlan
from repro.trace.records import LogicalIORecord


class PDCPolicy(PowerPolicy):
    """Popularity-ranked data concentration with periodic reshuffles."""

    name = "pdc"

    def __init__(
        self,
        monitoring_period: float | None = None,
        load_fill_fraction: float = 0.8,
    ) -> None:
        """``load_fill_fraction`` bounds how much of an enclosure's IOPS
        capacity the packing fills before spilling to the next disk —
        PDC packs by predicted load, not by bytes alone."""
        super().__init__()
        if not 0 < load_fill_fraction <= 1:
            raise ValidationError("load_fill_fraction must be in (0, 1]")
        self.monitoring_period = monitoring_period
        self.load_fill_fraction = load_fill_fraction
        self._next_checkpoint: float | None = None
        self._window_start = 0.0
        self._popularity: defaultdict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> None:
        """Read the PDC monitoring period and start the first window."""
        context = self._require_context()
        if self.monitoring_period is None:
            self.monitoring_period = context.config.pdc_monitoring_period
        self._next_checkpoint = now + self.monitoring_period
        self._window_start = now
        # PDC lets any disk spin down once its load drops (subject to
        # the executor's degraded-mode gate under fault injection).
        self.executor().apply(now, self._gate_plan(context))

    def _gate_plan(self, context: SimulationContext) -> ActionPlan:
        """Power-off enablement for every enclosure, as a plan."""
        return ActionPlan(
            [
                SetPowerOffEnabled(enclosure.name, True)
                for enclosure in context.enclosures
            ]
        )

    def next_checkpoint(self) -> float | None:
        """Time of the next PDC migration checkpoint."""
        return self._next_checkpoint

    def after_io(self, record: LogicalIORecord, response_time: float) -> None:
        """Count item popularity for the current window."""
        self._popularity[record.item_id] += 1

    def after_io_fast(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
        response_time: float,
    ) -> None:
        """Scalar variant: popularity needs only the item id."""
        self._popularity[item_id] += 1

    def on_checkpoint(self, now: float) -> ActionPlan | None:
        """Re-rank items by popularity and migrate across the array."""
        context = self._require_context()
        virt = context.virtualization
        config = context.config
        window = now - self._window_start
        if window <= 0:
            self._schedule_next(now)
            return None

        # Rank every placed item by popularity (this window's accesses).
        # Popularity is quantized into tiers, with ties broken by the
        # item's *current* placement: counting noise between
        # equal-popularity items must not reshuffle them every window,
        # or the resulting migration churn would keep every enclosure
        # awake permanently (the rank only matters across tiers).
        pops = self._popularity
        active_count = sum(1 for item in virt.item_ids() if pops.get(item, 0))
        mean_pop = (
            sum(pops.values()) / active_count if active_count else 1.0
        )
        quantum = max(1.0, 0.25 * mean_pop)
        enclosure_rank = {
            name: index for index, name in enumerate(virt.enclosure_names)
        }
        items = sorted(
            virt.item_ids(),
            key=lambda item: (
                -int(pops.get(item, 0) / quantum),
                enclosure_rank[virt.enclosure_of(item).name],
                item,
            ),
        )
        self.determinations += 1

        # Full re-layout in popularity order (PDC re-sorts everything —
        # "PDC also moves hot data between hot disk enclosures and cold
        # data between cold disk enclosures", which is why the paper
        # measures terabytes of PDC migration).  Active items (accessed
        # this window) pack onto the first disks by their measured load
        # against the planning-IOPS budget, bounded by disk capacity;
        # items untouched this window then spread across the *remaining*
        # disks by an even byte budget.
        names = virt.enclosure_names
        capacity = config.enclosure_size_bytes
        iops_budget = config.max_iops_random * self.load_fill_fraction
        plan = PlacementPlan()

        active = [i for i in items if self._popularity.get(i, 0) > 0]
        inactive = [i for i in items if self._popularity.get(i, 0) == 0]

        index = 0
        used = 0
        load = 0.0
        for item in active:
            size = virt.item_size(item)
            item_iops = self._popularity[item] / window
            fits = used + size <= capacity and load + item_iops <= (
                iops_budget
            )
            if not fits and used > 0:
                # Next disk; an item that alone overflows an empty
                # disk's budget still gets placed (alone).
                index = min(index + 1, len(names) - 1)
                used = 0
                load = 0.0
            target = names[index]
            used += size
            load += item_iops
            if virt.enclosure_of(item).name != target:
                plan.add(item, target)

        if inactive:
            first_tail = min(index + 1, len(names) - 1)
            remaining = names[first_tail:]
            total_inactive = sum(virt.item_size(i) for i in inactive)
            byte_budget = min(
                capacity,
                max(
                    1.2 * total_inactive / len(remaining),
                    max(virt.item_size(i) for i in inactive),
                ),
            )
            index = 0
            used = 0
            for item in inactive:
                size = virt.item_size(item)
                if used + size > byte_budget and used > 0:
                    index = min(index + 1, len(remaining) - 1)
                    used = 0
                target = remaining[index]
                used += size
                if virt.enclosure_of(item).name != target:
                    plan.add(item, target)

        context.migration_engine.execute(now, plan)

        # Re-evaluate the degraded-mode gate every period: an enclosure
        # whose spin-ups keep failing must stop spinning down for its
        # cool-down window, and re-qualifies automatically afterwards.
        gate_plan = self._gate_plan(context)
        self.executor().apply(now, gate_plan)

        self._popularity.clear()
        self._window_start = now
        self._schedule_next(now)
        applied = plan.as_actions()
        applied.extend(gate_plan)
        return applied

    def _schedule_next(self, now: float) -> None:
        assert self.monitoring_period is not None
        self._next_checkpoint = now + self.monitoring_period

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Window cursor and popularity counts, on top of the base state."""
        state = super().snapshot_state()
        state.update(
            monitoring_period=self.monitoring_period,
            next_checkpoint=self._next_checkpoint,
            window_start=self._window_start,
            popularity=list(self._popularity.items()),
        )
        return state

    def restore_state(self, state: dict) -> None:
        """Restore the policy exactly as :meth:`snapshot_state` captured it."""
        super().restore_state(state)
        self.monitoring_period = state["monitoring_period"]
        self._next_checkpoint = state["next_checkpoint"]
        self._window_start = state["window_start"]
        self._popularity = defaultdict(int, state["popularity"])
