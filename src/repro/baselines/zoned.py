"""Zoned policy: different power-saving methods per enclosure group.

Paper §IX (future work): "improve and complete the implementation of
the power-saving system in an actual data center with **multiple energy
saving methods**."  Real datacenters mix tiers — a latency-critical OLTP
zone next to an archival zone — and want a different method per tier.

:class:`ZonedPolicy` composes existing :class:`PowerPolicy` instances,
giving each a *zone* (a subset of enclosures).  Each sub-policy sees a
zone-scoped view of the simulation: only its enclosures, only the data
items placed on them, and only the I/O addressed to those items.  Zone
boundaries are hard — no policy migrates data across zones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.actions.plan import ActionPlan
from repro.baselines.base import PowerPolicy
from repro.errors import ConfigurationError, SnapshotError
from repro.monitoring.application import ApplicationMonitor
from repro.monitoring.storage import StorageMonitor
from repro.simulation import SimulationContext
from repro.storage.enclosure import DiskEnclosure
from repro.storage.meter import PowerMeter
from repro.storage.migration import MigrationEngine
from repro.storage.virtualization import BlockVirtualization
from repro.trace.records import LogicalIORecord, PhysicalIORecord


@dataclass(frozen=True)
class Zone:
    """One enclosure group and the policy that manages it."""

    name: str
    enclosures: tuple[str, ...]
    policy: PowerPolicy


class _ZoneVirtualization:
    """Zone-scoped facade over the shared block virtualization.

    Exposes the subset API the policies use; mutation methods delegate
    to the real virtualization, so capacity accounting stays global.
    """

    def __init__(
        self, inner: BlockVirtualization, names: tuple[str, ...]
    ) -> None:
        self._inner = inner
        self._names = names

    @property
    def enclosure_names(self) -> list[str]:
        return list(self._names)

    def enclosures(self) -> list[DiskEnclosure]:
        return [self._inner.enclosure(name) for name in self._names]

    def enclosure(self, name: str) -> DiskEnclosure:
        if name not in self._names:
            raise ConfigurationError(
                f"enclosure {name!r} is outside this zone"
            )
        return self._inner.enclosure(name)

    def item_ids(self) -> list[str]:
        return [
            item
            for name in self._names
            for item in self._inner.items_on(name)
        ]

    def items_on(self, enclosure: str) -> list[str]:
        return self._inner.items_on(self.enclosure(enclosure).name)

    def item_size(self, item_id: str) -> int:
        return self._inner.item_size(item_id)

    def enclosure_of(self, item_id: str) -> DiskEnclosure:
        return self._inner.enclosure_of(item_id)

    def used_bytes(self, enclosure: str) -> int:
        return self._inner.used_bytes(self.enclosure(enclosure).name)

    def free_bytes(self, enclosure: str) -> int:
        return self._inner.free_bytes(self.enclosure(enclosure).name)

    def has_item(self, item_id: str) -> bool:
        return self._inner.has_item(item_id)

    def resolve(self, item_id: str, offset: int) -> tuple[str, int]:
        return self._inner.resolve(item_id, offset)

    def move_item(self, item_id: str, target: str) -> tuple[str, str]:
        if target not in self._names:
            raise ConfigurationError(
                f"zone policies may not migrate across zones "
                f"(target {target!r})"
            )
        return self._inner.move_item(item_id, target)


class ZonedPolicy(PowerPolicy):
    """Runs one sub-policy per enclosure zone."""

    name = "zoned"

    def __init__(self, zones: list[Zone]) -> None:
        super().__init__()
        if not zones:
            raise ConfigurationError("at least one zone is required")
        seen: set[str] = set()
        for zone in zones:
            overlap = seen & set(zone.enclosures)
            if overlap:
                raise ConfigurationError(
                    f"enclosures {sorted(overlap)} appear in two zones"
                )
            seen |= set(zone.enclosures)
        self.zones = list(zones)
        self._item_zone: dict[str, Zone] = {}

    # ------------------------------------------------------------------
    def bind(self, context: SimulationContext) -> None:
        """Bind each zone's inner policy to a zone-scoped sub-context."""
        super().bind(context)
        names = set(context.virtualization.enclosure_names)
        for zone in self.zones:
            missing = set(zone.enclosures) - names
            if missing:
                raise ConfigurationError(
                    f"zone {zone.name!r} references unknown enclosures "
                    f"{sorted(missing)}"
                )
            zone.policy.bind(self._zone_context(context, zone))

    def _zone_context(
        self, context: SimulationContext, zone: Zone
    ) -> SimulationContext:
        virtualization = _ZoneVirtualization(
            context.virtualization, zone.enclosures
        )
        enclosures = [
            context.virtualization.enclosure(name)
            for name in zone.enclosures
        ]
        # Zone-scoped monitors: sub-policies classify and window their
        # own traffic (records are routed in after_io/record below).
        zone_context = SimulationContext(
            config=context.config,
            virtualization=virtualization,  # type: ignore[arg-type]
            cache=context.cache,
            controller=context.controller,
            app_monitor=ApplicationMonitor(),
            storage_monitor=StorageMonitor(enclosures),
            migration_engine=MigrationEngine(context.controller),
            meter=PowerMeter(enclosures, context.config.controller_power),
            fault_clock=context.fault_clock,
            # All zones share the parent executor: one action log, one
            # degraded-mode gate, one mutation path (zone enclosure sets
            # are disjoint, so gate state never aliases across zones).
            executor=context.executor,
        )
        return zone_context

    def _zone_of(self, item_id: str) -> Zone | None:
        zone = self._item_zone.get(item_id)
        if zone is not None:
            return zone
        context = self._require_context()
        if not context.virtualization.has_item(item_id):
            return None
        enclosure = context.virtualization.enclosure_of(item_id).name
        for candidate in self.zones:
            if enclosure in candidate.enclosures:
                self._item_zone[item_id] = candidate
                return candidate
        return None

    # ------------------------------------------------------------------
    # PowerPolicy interface: fan out to the zones
    # ------------------------------------------------------------------
    def _install_fan_out(self) -> None:
        """Tap physical records and fan them out per zone's monitor."""
        context = self._require_context()
        inner_tap = context.storage_monitor.on_physical

        def fan_out(record: PhysicalIORecord) -> None:
            inner_tap(record)
            for zone in self.zones:
                if record.enclosure in zone.enclosures:
                    zone.policy.context.storage_monitor.on_physical(record)
                    break

        context.controller.set_physical_tap(fan_out)

    def on_start(self, now: float) -> None:
        """Start every zone policy and fan monitoring out per zone."""
        self._install_fan_out()
        for zone in self.zones:
            zone.policy.on_start(now)
            zone.policy.context.app_monitor.begin_window(now)

    def next_checkpoint(self) -> float | None:
        """Earliest checkpoint requested by any zone policy."""
        times = [
            zone.policy.next_checkpoint()
            for zone in self.zones
            if zone.policy.next_checkpoint() is not None
        ]
        return min(times) if times else None

    def on_checkpoint(self, now: float) -> ActionPlan | None:
        """Run checkpoints for each zone whose deadline has passed."""
        applied = ActionPlan()
        for zone in self.zones:
            checkpoint = zone.policy.next_checkpoint()
            if checkpoint is not None and checkpoint <= now:
                zone_plan = zone.policy.on_checkpoint(now)
                if zone_plan:
                    applied.extend(zone_plan)
        self.determinations = sum(
            zone.policy.determinations for zone in self.zones
        )
        return applied or None

    def after_io(self, record: LogicalIORecord, response_time: float) -> None:
        """Route the I/O record to the owning zone's policy."""
        zone = self._zone_of(record.item_id)
        if zone is None:
            return
        zone.policy.context.app_monitor.record(record, response_time)
        zone.policy.after_io(record, response_time)
        self.determinations = sum(
            z.policy.determinations for z in self.zones
        )

    def on_end(self, now: float) -> None:
        """Finish every zone policy."""
        for zone in self.zones:
            zone.policy.on_end(now)

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Capture the router cache plus every zone's sub-simulation.

        Each zone owns a private app monitor, storage monitor and
        migration engine (built in :meth:`_zone_context`); they are
        invisible to the session-level capture, so the zoned planner
        snapshots them alongside the inner policies' own state.
        """
        state = super().snapshot_state()
        state["item_zone"] = {
            item: zone.name for item, zone in self._item_zone.items()
        }
        state["zones"] = {
            zone.name: {
                "policy": zone.policy.snapshot_state(),
                "app_monitor": (
                    zone.policy._require_context().app_monitor.snapshot_state()
                ),
                "storage_monitor": (
                    zone.policy._require_context()
                    .storage_monitor.snapshot_state()
                ),
                "migration_engine": (
                    zone.policy._require_context()
                    .migration_engine.snapshot_state()
                ),
            }
            for zone in self.zones
        }
        return state

    def restore_state(self, state: dict) -> None:
        """Restore every zone from :meth:`snapshot_state`'s capture.

        The policy must already be ``bind()``-ed (which rebuilds the
        zone sub-contexts); restoring also re-arms the physical-record
        fan-out tap that :meth:`on_start` installed in the original run.
        """
        super().restore_state(state)
        by_name = {zone.name: zone for zone in self.zones}
        if set(state["zones"]) != set(by_name):
            raise SnapshotError(
                "snapshot zones do not match this policy's zones: "
                f"snapshot has {sorted(state['zones'])}, "
                f"policy has {sorted(by_name)}"
            )
        for name, zone_state in state["zones"].items():
            zone = by_name[name]
            zone.policy.restore_state(zone_state["policy"])
            zone_context = zone.policy._require_context()
            zone_context.app_monitor.restore_state(zone_state["app_monitor"])
            zone_context.storage_monitor.restore_state(
                zone_state["storage_monitor"]
            )
            zone_context.migration_engine.restore_state(
                zone_state["migration_engine"]
            )
        self._item_zone = {
            item: by_name[name] for item, name in state["item_zone"].items()
        }
        self._install_fan_out()
