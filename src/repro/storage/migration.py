"""Migration engine: executes a data-placement plan item by item.

Paper §V-A: after the power-management function decides placement, the
runtime method migrates data items between enclosures, P0/P1/P2 items
first (to free space for P3), one by one and throttled.  This module
turns a :class:`PlacementPlan` (list of moves) into serialized
:meth:`~repro.storage.controller.StorageController.migrate_item` calls
and aggregates statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, MigrationAbortedError
from repro.storage.controller import StorageController


@dataclass(frozen=True)
class Move:
    """One planned data-item move."""

    item_id: str
    target_enclosure: str
    #: True when the move evacuates a P0/P1/P2 item from a hot enclosure
    #: (paper Algorithm 3); these execute before P3 consolidation moves
    #: (paper Algorithm 2) because they create the space the latter need.
    evacuation: bool = False


@dataclass
class PlacementPlan:
    """An ordered set of moves produced by the placement algorithms."""

    moves: list[Move] = field(default_factory=list)

    def add(self, item_id: str, target_enclosure: str, evacuation: bool = False) -> None:
        """Append one item move to the plan."""
        self.moves.append(Move(item_id, target_enclosure, evacuation))

    def ordered(self) -> list[Move]:
        """Execution order: evacuations first, then consolidation moves,
        preserving the algorithms' own within-class ordering."""
        return [m for m in self.moves if m.evacuation] + [
            m for m in self.moves if not m.evacuation
        ]

    def __len__(self) -> int:
        return len(self.moves)

    def __bool__(self) -> bool:
        return bool(self.moves)


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of executing one placement plan."""

    moves_executed: int
    bytes_moved: int
    started_at: float
    completed_at: float
    #: Moves dropped because the target could no longer hold the item
    #: (the plan was computed against a snapshot; a concurrent policy or
    #: an earlier skipped move can invalidate it).
    moves_skipped: int = 0
    #: Moves aborted mid-transfer by fault injection and rolled back.
    #: The item stays on its source enclosure with all books (placement,
    #: used-bytes, energy) untouched; the next management checkpoint
    #: re-plans the move.
    moves_aborted: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock time the migration took, in seconds."""
        return self.completed_at - self.started_at


class MigrationEngine:
    """Executes placement plans serially through the controller."""

    def __init__(self, controller: StorageController) -> None:
        self.controller = controller
        self.total_bytes_moved = 0
        self.total_moves = 0
        self.total_aborts = 0

    def execute(self, now: float, plan: PlacementPlan) -> MigrationReport:
        """Run every move in plan order; returns an execution report.

        Moves are serialized: each starts when the previous completes,
        which is what a throttled one-at-a-time migration does.  Moves
        whose item already sits on the target are skipped silently (the
        plan may have been computed before an earlier move landed).
        """
        clock = now
        executed = 0
        skipped = 0
        aborted = 0
        bytes_moved = 0
        for move in plan.ordered():
            virt = self.controller.virtualization
            if not virt.has_item(move.item_id):
                continue
            if virt.enclosure_of(move.item_id).name == move.target_enclosure:
                continue
            size = virt.item_size(move.item_id)
            try:
                clock = self.controller.migrate_item(
                    clock, move.item_id, move.target_enclosure
                )
            except CapacityError:
                # The plan was computed against a snapshot; leave the
                # item where it is rather than failing the whole run.
                skipped += 1
                continue
            except MigrationAbortedError:
                # Injected mid-transfer abort (repro.faults): the copy
                # was rolled back before any book was mutated, so the
                # placement stays consistent and the next checkpoint
                # simply re-plans the move.
                aborted += 1
                continue
            executed += 1
            bytes_moved += size
        self.total_bytes_moved += bytes_moved
        self.total_moves += executed
        self.total_aborts += aborted
        return MigrationReport(
            moves_executed=executed,
            bytes_moved=bytes_moved,
            started_at=now,
            completed_at=clock,
            moves_skipped=skipped,
            moves_aborted=aborted,
        )
