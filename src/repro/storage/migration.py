"""Migration engine: executes a data-placement plan item by item.

Paper §V-A: after the power-management function decides placement, the
runtime method migrates data items between enclosures, P0/P1/P2 items
first (to free space for P3), one by one and throttled.  This module
turns a :class:`PlacementPlan` (list of moves) into
:class:`~repro.actions.records.MigrateItem` actions applied through the
:class:`~repro.actions.executor.ActionExecutor` — the sole mutation
path into the controller — and aggregates statistics into a
:class:`MigrationReport` for its callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.actions.plan import ActionPlan
from repro.actions.records import ActionOutcome, MigrateItem
from repro.storage.controller import StorageController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.actions.executor import ActionExecutor


@dataclass(frozen=True)
class Move:
    """One planned data-item move."""

    item_id: str
    target_enclosure: str
    #: True when the move evacuates a P0/P1/P2 item from a hot enclosure
    #: (paper Algorithm 3); these execute before P3 consolidation moves
    #: (paper Algorithm 2) because they create the space the latter need.
    evacuation: bool = False


@dataclass
class PlacementPlan:
    """An ordered set of moves produced by the placement algorithms."""

    moves: list[Move] = field(default_factory=list)

    def add(self, item_id: str, target_enclosure: str, evacuation: bool = False) -> None:
        """Append one item move to the plan."""
        self.moves.append(Move(item_id, target_enclosure, evacuation))

    def ordered(self) -> list[Move]:
        """Execution order: evacuations first, then consolidation moves,
        preserving the algorithms' own within-class ordering."""
        return [m for m in self.moves if m.evacuation] + [
            m for m in self.moves if not m.evacuation
        ]

    def as_actions(self) -> ActionPlan:
        """This plan as an executor-ready sequence of migrate actions."""
        return ActionPlan(
            [
                MigrateItem(m.item_id, m.target_enclosure, m.evacuation)
                for m in self.ordered()
            ]
        )

    def __len__(self) -> int:
        return len(self.moves)

    def __bool__(self) -> bool:
        return bool(self.moves)


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of executing one placement plan."""

    moves_executed: int
    bytes_moved: int
    started_at: float
    completed_at: float
    #: Moves dropped because the target could no longer hold the item
    #: (the plan was computed against a snapshot; a concurrent policy or
    #: an earlier skipped move can invalidate it).
    moves_skipped: int = 0
    #: Moves aborted mid-transfer by fault injection and rolled back.
    #: The item stays on its source enclosure with all books (placement,
    #: used-bytes, energy) untouched; the next management checkpoint
    #: re-plans the move.
    moves_aborted: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock time the migration took, in seconds."""
        return self.completed_at - self.started_at


class MigrationEngine:
    """Executes placement plans through the action executor."""

    def __init__(
        self,
        controller: StorageController,
        executor: ActionExecutor | None = None,
    ) -> None:
        self.controller = controller
        if executor is None:
            # Imported here, not at module top: the executor costs plans
            # via the cache module, whose package imports this module.
            from repro.actions.executor import ActionExecutor

            executor = ActionExecutor(controller)
        #: The executor plans are applied through; a standalone engine
        #: gets a private one, :class:`~repro.simulation.SimulationContext`
        #: re-points this to the shared context executor so migrations
        #: land in the same action log as everything else.
        self.executor = executor
        self.total_bytes_moved = 0
        self.total_moves = 0
        self.total_aborts = 0

    def execute(self, now: float, plan: PlacementPlan) -> MigrationReport:
        """Run every move in plan order; returns an execution report.

        Moves are serialized: each starts when the previous completes,
        which is what a throttled one-at-a-time migration does (the
        executor's migration-chaining rule).  Moves whose item is gone
        or already sits on the target are rejected by the executor and
        skipped silently here (the plan may have been computed before an
        earlier move landed); capacity rejections count as skips.
        """
        report = self.executor.apply(now, plan.as_actions())
        skipped = sum(
            1
            for record in report.records
            if record.outcome is ActionOutcome.REJECTED
            and record.reason == "capacity"
        )
        executed = report.moves_executed
        bytes_moved = report.bytes_moved
        aborted = report.moves_aborted
        self.total_bytes_moved += bytes_moved
        self.total_moves += executed
        self.total_aborts += aborted
        return MigrationReport(
            moves_executed=executed,
            bytes_moved=bytes_moved,
            started_at=now,
            completed_at=report.migration_clock,
            moves_skipped=skipped,
            moves_aborted=aborted,
        )

    def snapshot_state(self) -> dict:
        """Serializable migration totals (:mod:`repro.persistence`)."""
        return {
            "total_bytes_moved": self.total_bytes_moved,
            "total_moves": self.total_moves,
            "total_aborts": self.total_aborts,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the totals exactly as captured."""
        self.total_bytes_moved = state["total_bytes_moved"]
        self.total_moves = state["total_moves"]
        self.total_aborts = state["total_aborts"]
