"""Block-virtualization layer: volumes, data items, physical placement.

The paper's storage stack (Fig 2) interposes a block-virtualization layer
between applications and disk enclosures.  Applications address **data
items** (tables, indexes, files) inside **volumes**; the virtualization
layer maps each volume to a disk enclosure and each data item to a block
extent.  A data item lives wholly on one enclosure — the paper splits
anything spanning enclosures into separate items (§II-C.1) — so the
mapping here is simply *item → volume → enclosure* plus a base block
address per item.

The layer also owns capacity accounting (used/free bytes per enclosure),
which the placement algorithms (paper Algorithms 2 and 3) consult, and it
implements :meth:`move_item`, the primitive behind data migration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import CapacityError, MappingError, ValidationError
from repro.storage.enclosure import DiskEnclosure
from repro.storage.tiers import (
    HDD_COST_PER_BYTE,
    StorageTier,
    TierKind,
    TierLedger,
)


@dataclass(frozen=True)
class Volume:
    """A logical volume carved out of one disk enclosure."""

    name: str
    enclosure: str


@dataclass(frozen=True)
class PhysicalExtent:
    """Physical location of a data item: enclosure + block extent."""

    enclosure: str
    base_block: int
    blocks: int

    @property
    def size_bytes(self) -> int:
        """Volume size in bytes."""
        return units.blocks_to_bytes(self.blocks)


class BlockVirtualization:
    """Mapping between data items, volumes, enclosures, and tiers.

    Placement is ``(tier, device)``: every enclosure belongs to exactly
    one :class:`~repro.storage.tiers.StorageTier`.  Legacy callers pass
    only the enclosure list and get one implicit HDD tier holding every
    device — their behaviour (and every float in a replay) is unchanged,
    because the per-tier :class:`~repro.storage.tiers.TierLedger` books
    are maintained with integer arithmetic only.
    """

    def __init__(
        self,
        enclosures: list[DiskEnclosure],
        tiers: tuple[StorageTier, ...] | None = None,
    ) -> None:
        if not enclosures:
            raise ValidationError("at least one enclosure is required")
        names = [enc.name for enc in enclosures]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate enclosure names: {names}")
        self._enclosures: dict[str, DiskEnclosure] = {
            enc.name: enc for enc in enclosures
        }
        if tiers is None:
            tiers = (
                StorageTier(
                    name="hdd",
                    kind=TierKind.HDD,
                    devices=tuple(names),
                    cost_per_byte=HDD_COST_PER_BYTE,
                ),
            )
        self._tiers: dict[str, StorageTier] = {}
        self._device_tier: dict[str, str] = {}
        self.tier_ledger = TierLedger()
        for tier in tiers:
            if tier.name in self._tiers:
                raise ValidationError(f"duplicate tier name {tier.name!r}")
            for device in tier.devices:
                if device not in self._enclosures:
                    raise ValidationError(
                        f"tier {tier.name!r} lists unknown device {device!r}"
                    )
                if device in self._device_tier:
                    raise ValidationError(
                        f"device {device!r} belongs to two tiers: "
                        f"{self._device_tier[device]!r} and {tier.name!r}"
                    )
                self._device_tier[device] = tier.name
            self._tiers[tier.name] = tier
            self.tier_ledger.register_tier(tier.name)
        untiered = sorted(set(names) - set(self._device_tier))
        if untiered:
            raise ValidationError(
                f"enclosures belong to no tier: {untiered}"
            )
        self._volumes: dict[str, Volume] = {}
        self._item_volume: dict[str, str] = {}
        self._item_size: dict[str, int] = {}
        self._item_base: dict[str, int] = {}
        self._used_bytes: dict[str, int] = {name: 0 for name in names}
        self._next_block: dict[str, int] = {name: 0 for name in names}
        #: Replica copies (item → {enclosure → size bytes}): redundancy
        #: registered by :class:`~repro.actions.records.ReplicateItem`.
        #: Replicas occupy capacity and tier books but never serve I/O —
        #: routing always resolves to the primary copy.
        self._replicas: dict[str, dict[str, int]] = {}
        self._replica_bytes: dict[str, int] = {name: 0 for name in names}
        # Hot-path routing cache: item id → (enclosure, name, base block,
        # size bytes).  One dict probe replaces the three-map chain of
        # :meth:`resolve` on every served I/O; entries are dropped the
        # moment the mapping they summarize changes.
        self._route_cache: dict[str, tuple[DiskEnclosure, str, int, int]] = {}

    # ------------------------------------------------------------------
    # enclosures and volumes
    # ------------------------------------------------------------------
    @property
    def enclosure_names(self) -> list[str]:
        """Names of all registered enclosures."""
        return list(self._enclosures)

    def enclosure(self, name: str) -> DiskEnclosure:
        """Look up an enclosure by name."""
        try:
            return self._enclosures[name]
        except KeyError:
            raise MappingError(f"unknown enclosure {name!r}") from None

    def enclosures(self) -> list[DiskEnclosure]:
        """All registered enclosures, in registration order."""
        return list(self._enclosures.values())

    # ------------------------------------------------------------------
    # tiers
    # ------------------------------------------------------------------
    @property
    def tier_names(self) -> list[str]:
        """Names of all registered tiers, in declaration order."""
        return list(self._tiers)

    @property
    def is_tiered(self) -> bool:
        """Whether more than one tier is configured (multi-tier mode)."""
        return len(self._tiers) > 1

    def tier(self, name: str) -> StorageTier:
        """Look up a tier by name."""
        try:
            return self._tiers[name]
        except KeyError:
            raise MappingError(f"unknown tier {name!r}") from None

    def tiers(self) -> list[StorageTier]:
        """All registered tiers, in declaration order."""
        return list(self._tiers.values())

    def tier_of_device(self, device: str) -> StorageTier:
        """Tier owning one enclosure/device."""
        try:
            return self._tiers[self._device_tier[device]]
        except KeyError:
            raise MappingError(f"unknown enclosure {device!r}") from None

    def tier_of_item(self, item_id: str) -> StorageTier:
        """Tier holding an item's primary copy (via its enclosure)."""
        return self.tier_of_device(self.enclosure_of(item_id).name)

    def devices_in_tier(self, tier_name: str) -> tuple[str, ...]:
        """Device names of one tier, in declaration order."""
        return self.tier(tier_name).devices

    def create_volume(self, name: str, enclosure: str) -> Volume:
        """Create a volume on an enclosure (paper Table I creates 36)."""
        if name in self._volumes:
            raise MappingError(f"volume {name!r} already exists")
        if enclosure not in self._enclosures:
            raise MappingError(f"unknown enclosure {enclosure!r}")
        volume = Volume(name, enclosure)
        self._volumes[name] = volume
        return volume

    def volume(self, name: str) -> Volume:
        """Look up a volume by name."""
        try:
            return self._volumes[name]
        except KeyError:
            raise MappingError(f"unknown volume {name!r}") from None

    @property
    def volume_names(self) -> list[str]:
        """Names of all registered volumes."""
        return list(self._volumes)

    # ------------------------------------------------------------------
    # data items
    # ------------------------------------------------------------------
    def add_item(self, item_id: str, size_bytes: int, volume: str) -> None:
        """Place a new data item on a volume.

        Raises :class:`CapacityError` if the backing enclosure would
        overflow, :class:`MappingError` for unknown volumes or duplicates.
        """
        if item_id in self._item_volume:
            raise MappingError(f"data item {item_id!r} already placed")
        if size_bytes <= 0:
            raise ValidationError(f"item size must be positive: {size_bytes}")
        vol = self.volume(volume)
        enc = self.enclosure(vol.enclosure)
        occupied = self._used_bytes[enc.name] + self._replica_bytes[enc.name]
        if enc.capacity_bytes and occupied + size_bytes > enc.capacity_bytes:
            raise CapacityError(
                f"enclosure {enc.name!r} cannot hold item {item_id!r}: "
                f"used {occupied} + {size_bytes} > "
                f"{enc.capacity_bytes}"
            )
        self._item_volume[item_id] = volume
        self._item_size[item_id] = size_bytes
        self._item_base[item_id] = self._next_block[enc.name]
        self._route_cache.pop(item_id, None)
        blocks = units.bytes_to_blocks(size_bytes)
        self._next_block[enc.name] += blocks
        self._used_bytes[enc.name] += size_bytes
        self.tier_ledger.record_in(self._device_tier[enc.name], size_bytes)

    def remove_item(self, item_id: str) -> None:
        """Delete an item and release its space on the enclosure."""
        volume = self._item_volume.pop(item_id, None)
        if volume is None:
            raise MappingError(f"unknown data item {item_id!r}")
        enclosure = self._volumes[volume].enclosure
        size = self._item_size.pop(item_id)
        self._used_bytes[enclosure] -= size
        self._item_base.pop(item_id)
        self._route_cache.pop(item_id, None)
        self.tier_ledger.record_out(self._device_tier[enclosure], size)
        for replica_enclosure, replica_size in self._replicas.pop(
            item_id, {}
        ).items():
            self._replica_bytes[replica_enclosure] -= replica_size
            self.tier_ledger.record_out(
                self._device_tier[replica_enclosure], replica_size
            )

    def has_item(self, item_id: str) -> bool:
        """Whether the item is mapped to a volume."""
        return item_id in self._item_volume

    def item_ids(self) -> list[str]:
        """Ids of all mapped items."""
        return list(self._item_volume)

    def item_size(self, item_id: str) -> int:
        """Size of the item in bytes."""
        try:
            return self._item_size[item_id]
        except KeyError:
            raise MappingError(f"unknown data item {item_id!r}") from None

    def volume_of(self, item_id: str) -> Volume:
        """Volume holding the item."""
        try:
            return self._volumes[self._item_volume[item_id]]
        except KeyError:
            raise MappingError(f"unknown data item {item_id!r}") from None

    def enclosure_of(self, item_id: str) -> DiskEnclosure:
        """Enclosure holding the item (via its volume)."""
        return self.enclosure(self.volume_of(item_id).enclosure)

    def extent_of(self, item_id: str) -> PhysicalExtent:
        """Physical extent of a data item (for physical trace records)."""
        enc = self.enclosure_of(item_id)
        return PhysicalExtent(
            enclosure=enc.name,
            base_block=self._item_base[item_id],
            blocks=units.bytes_to_blocks(self._item_size[item_id]),
        )

    def route(self, item_id: str) -> tuple[DiskEnclosure, str, int, int]:
        """Resolve an item to ``(enclosure, name, base block, size bytes)``.

        The hot-path companion of :meth:`resolve`/:meth:`enclosure_of`:
        the batched replay pump calls this once per I/O, so the answer is
        cached until :meth:`add_item`/:meth:`remove_item`/:meth:`move_item`
        changes the mapping.  Raises :class:`MappingError` for unplaced
        items, exactly as the uncached accessors do.
        """
        route = self._route_cache.get(item_id)
        if route is None:
            enclosure = self.enclosure_of(item_id)
            route = (
                enclosure,
                enclosure.name,
                self._item_base[item_id],
                self._item_size[item_id],
            )
            self._route_cache[item_id] = route
        return route

    def resolve(self, item_id: str, offset: int) -> tuple[str, int]:
        """Map (item, byte offset) → (enclosure name, block address)."""
        size = self.item_size(item_id)
        if offset < 0 or offset >= size:
            raise MappingError(
                f"offset {offset} outside item {item_id!r} of size {size}"
            )
        extent = self.extent_of(item_id)
        return extent.enclosure, extent.base_block + offset // units.BLOCK_SIZE

    def items_on(self, enclosure: str) -> list[str]:
        """Data items currently placed on one enclosure."""
        if enclosure not in self._enclosures:
            raise MappingError(f"unknown enclosure {enclosure!r}")
        return [
            item
            for item, volume in self._item_volume.items()
            if self._volumes[volume].enclosure == enclosure
        ]

    def used_bytes(self, enclosure: str) -> int:
        """Bytes of item data stored on the enclosure."""
        try:
            return self._used_bytes[enclosure]
        except KeyError:
            raise MappingError(f"unknown enclosure {enclosure!r}") from None

    def free_bytes(self, enclosure: str) -> int:
        """Remaining capacity of the enclosure in bytes.

        Replica copies occupy capacity too, so free space is capacity
        minus primary bytes minus replica bytes.
        """
        enc = self.enclosure(enclosure)
        if not enc.capacity_bytes:
            raise MappingError(
                f"enclosure {enclosure!r} has no declared capacity"
            )
        return (
            enc.capacity_bytes
            - self._used_bytes[enclosure]
            - self._replica_bytes[enclosure]
        )

    # ------------------------------------------------------------------
    # replicas
    # ------------------------------------------------------------------
    def add_replica(self, item_id: str, enclosure: str) -> int:
        """Register a replica copy of an item on another enclosure.

        Returns the replica's size in bytes.  The replica occupies
        capacity and enters its tier's ledger books, but routing keeps
        resolving to the primary copy — replicas are redundancy, not
        load-balancing.  Raises :class:`MappingError` for unknown items
        or enclosures, a replica on the primary's own enclosure, or a
        duplicate replica; :class:`CapacityError` when the target is
        full.
        """
        size = self.item_size(item_id)
        if enclosure not in self._enclosures:
            raise MappingError(f"unknown enclosure {enclosure!r}")
        primary = self.enclosure_of(item_id).name
        if enclosure == primary:
            raise MappingError(
                f"item {item_id!r} already has its primary copy on "
                f"{enclosure!r}"
            )
        copies = self._replicas.setdefault(item_id, {})
        if enclosure in copies:
            raise MappingError(
                f"item {item_id!r} already has a replica on {enclosure!r}"
            )
        enc = self._enclosures[enclosure]
        occupied = self._used_bytes[enclosure] + self._replica_bytes[enclosure]
        if enc.capacity_bytes and occupied + size > enc.capacity_bytes:
            raise CapacityError(
                f"enclosure {enclosure!r} cannot hold a replica of "
                f"{item_id!r}: used {occupied} + {size} > {enc.capacity_bytes}"
            )
        copies[enclosure] = size
        self._replica_bytes[enclosure] += size
        self.tier_ledger.record_in(self._device_tier[enclosure], size)
        return size

    def remove_replica(self, item_id: str, enclosure: str) -> int:
        """Drop a replica copy; returns the bytes released."""
        copies = self._replicas.get(item_id)
        if not copies or enclosure not in copies:
            raise MappingError(
                f"item {item_id!r} has no replica on {enclosure!r}"
            )
        size = copies.pop(enclosure)
        if not copies:
            self._replicas.pop(item_id)
        self._replica_bytes[enclosure] -= size
        self.tier_ledger.record_out(self._device_tier[enclosure], size)
        return size

    def replicas_of(self, item_id: str) -> tuple[str, ...]:
        """Enclosures holding replica copies of an item (sorted)."""
        return tuple(sorted(self._replicas.get(item_id, ())))

    def replica_bytes_on(self, enclosure: str) -> int:
        """Bytes of replica data stored on the enclosure."""
        try:
            return self._replica_bytes[enclosure]
        except KeyError:
            raise MappingError(f"unknown enclosure {enclosure!r}") from None

    def move_item(self, item_id: str, target_enclosure: str) -> tuple[str, str]:
        """Re-map a data item to (a volume on) another enclosure.

        Returns ``(source, target)`` enclosure names.  The caller — the
        migration engine — is responsible for the physical copy I/O; this
        method only updates the mapping and capacity accounting.  A
        per-enclosure migration volume is created on demand.
        """
        src = self.enclosure_of(item_id).name
        if target_enclosure not in self._enclosures:
            raise MappingError(f"unknown enclosure {target_enclosure!r}")
        if src == target_enclosure:
            return src, src
        size = self._item_size[item_id]
        target = self.enclosure(target_enclosure)
        occupied = (
            self._used_bytes[target_enclosure]
            + self._replica_bytes[target_enclosure]
        )
        if target.capacity_bytes and occupied + size > target.capacity_bytes:
            raise CapacityError(
                f"cannot move {item_id!r} to {target_enclosure!r}: "
                f"used {occupied} + {size} > "
                f"{target.capacity_bytes}"
            )
        volume_name = f"_migration/{target_enclosure}"
        if volume_name not in self._volumes:
            self.create_volume(volume_name, target_enclosure)
        self._used_bytes[src] -= size
        self._used_bytes[target_enclosure] += size
        self._item_volume[item_id] = volume_name
        self._item_base[item_id] = self._next_block[target_enclosure]
        self._next_block[target_enclosure] += units.bytes_to_blocks(size)
        self._route_cache.pop(item_id, None)
        source_tier = self._device_tier[src]
        target_tier = self._device_tier[target_enclosure]
        if source_tier != target_tier:
            self.tier_ledger.record_out(source_tier, size)
            self.tier_ledger.record_in(target_tier, size)
        return src, target_enclosure

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable mapping state (:mod:`repro.persistence`).

        Captures volumes, item placement, and capacity books, all in
        insertion order (``item_ids()``/``items_on()`` report it, so it
        is observable state).  The enclosure objects themselves and the
        ``_route_cache`` are not stored — enclosures snapshot separately
        and the route cache is derived, rebuilt lazily after restore.
        """
        return {
            "volumes": [
                (vol.name, vol.enclosure) for vol in self._volumes.values()
            ],
            "item_volume": list(self._item_volume.items()),
            "item_size": list(self._item_size.items()),
            "item_base": list(self._item_base.items()),
            "used_bytes": dict(self._used_bytes),
            "next_block": dict(self._next_block),
            "replicas": [
                (item, list(copies.items()))
                for item, copies in self._replicas.items()
            ],
            "tier_ledger": self.tier_ledger.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the mapping exactly as captured (route cache cleared)."""
        self._volumes = {
            name: Volume(name, enclosure)
            for name, enclosure in state["volumes"]
        }
        self._item_volume = dict(state["item_volume"])
        self._item_size = dict(state["item_size"])
        self._item_base = dict(state["item_base"])
        self._used_bytes = dict(state["used_bytes"])
        self._next_block = dict(state["next_block"])
        self._replicas = {
            item: dict(copies) for item, copies in state.get("replicas", ())
        }
        self._replica_bytes = {name: 0 for name in self._enclosures}
        for copies in self._replicas.values():
            for enclosure, size in copies.items():
                self._replica_bytes[enclosure] += size
        ledger_state = state.get("tier_ledger")
        if ledger_state is not None:
            self.tier_ledger.restore_state(ledger_state)
        self._route_cache.clear()
