"""Power meter: aggregate energy accounting for a storage unit.

The paper attaches a physical power meter to the storage unit
(§VII-A.3) and reports the average power of the disk enclosures and the
storage controller separately (Figs 8, 11, 14).  :class:`PowerMeter`
computes the same quantities from the simulator's energy timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.storage.controller import StorageController
from repro.storage.enclosure import DiskEnclosure
from repro.storage.power import ControllerPowerModel, PowerState
from repro.units import Joules, Seconds, Watts


@dataclass(frozen=True)
class PowerReading:
    """Average power of a storage unit over a measurement window."""

    duration_seconds: Seconds
    enclosure_watts: Watts
    controller_watts: Watts
    enclosure_joules: Joules
    controller_joules: Joules

    @property
    def total_watts(self) -> Watts:
        """Combined enclosure and controller power, in watts."""
        return self.enclosure_watts + self.controller_watts

    @property
    def total_joules(self) -> Joules:
        """Combined enclosure and controller energy, in joules."""
        return self.enclosure_joules + self.controller_joules


class PowerMeter:
    """Reads average power off the enclosures' energy timelines."""

    def __init__(
        self,
        enclosures: list[DiskEnclosure],
        controller_model: ControllerPowerModel | None = None,
    ) -> None:
        if not enclosures:
            raise ValidationError("at least one enclosure is required")
        self.enclosures = list(enclosures)
        self.controller_model = controller_model or ControllerPowerModel()

    def read(self, now: Seconds, controller: StorageController | None = None) -> PowerReading:
        """Measure average power from time 0 to ``now``.

        Settles every enclosure's timeline to ``now`` first, so the
        reading is exact.  Controller I/O count comes from ``controller``
        when given (its cache traffic), else zero.
        """
        if now <= 0:
            raise ValidationError("measurement duration must be positive")
        enclosure_joules: Joules = 0.0
        for enclosure in self.enclosures:
            enclosure.settle(now)
            enclosure_joules += enclosure.energy_joules()
        io_count = controller.logical_io_count if controller is not None else 0
        controller_joules = self.controller_model.energy(now, io_count)
        return PowerReading(
            duration_seconds=now,
            enclosure_watts=enclosure_joules / now,
            controller_watts=controller_joules / now,
            enclosure_joules=enclosure_joules,
            controller_joules=controller_joules,
        )

    def state_breakdown(self, now: Seconds) -> dict[PowerState, Seconds]:
        """Total enclosure-seconds spent in each power state up to ``now``."""
        breakdown = {state: 0.0 for state in PowerState}
        for enclosure in self.enclosures:
            enclosure.settle(now)
            for state in PowerState:
                breakdown[state] += enclosure.time_in_state(state)
        return breakdown
