"""Disk-enclosure model: power-state machine, queueing, energy timeline.

A :class:`DiskEnclosure` is the power-saving unit of the paper's storage
model (§II-A).  It serves I/O through a single-server queue whose service
rate is the enclosure's IOPS capacity (random or sequential), and moves
through the power states of :class:`~repro.storage.power.PowerState`:

``ACTIVE ⇄ IDLE → SPIN_DOWN → OFF → SPIN_UP → IDLE/ACTIVE``

Spin-down happens automatically after :attr:`spin_down_timeout` seconds of
idleness, but **only** when the active power policy has called
:meth:`enable_power_off` — this is how "apply the power-off function to
only the cold disk enclosures" (paper §IV-G) is expressed.

Energy is integrated exactly: every state occupancy interval contributes
``state wattage × duration`` joules, accumulated per state, so average
power and the paper's power-consumption figures fall out of the timeline.
All times are virtual seconds; the object is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    AuditError,
    EnclosureUnavailableError,
    PowerStateError,
    SpinUpFailedError,
    ValidationError,
)
from repro.storage.power import LEGAL_TRANSITIONS, PowerModel, PowerState
from repro.units import Bytes, Joules, Seconds, Watts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.clock import FaultClock


@dataclass(frozen=True)
class IOResult:
    """Outcome of submitting a batch of I/Os to an enclosure.

    ``arrival`` is when the request was issued, ``start`` when service
    began (after any queueing and spin-up wait), ``completion`` when the
    last I/O of the batch finished, and ``count`` the batch size.
    """

    arrival: Seconds
    start: Seconds
    completion: Seconds
    count: int

    @property
    def response_time(self) -> Seconds:
        """Response time of the whole batch (completion − arrival)."""
        return self.completion - self.arrival

    @property
    def wait_time(self) -> Seconds:
        """Time spent waiting before service began (queue + spin-up)."""
        return self.start - self.arrival

    @property
    def mean_response_time(self) -> Seconds:
        """Mean per-I/O response assuming I/Os complete evenly in service.

        The i-th of ``count`` I/Os completes at
        ``start + (i/count) × service``; averaging gives
        ``wait + service × (count + 1) / (2 × count)``.
        """
        service = self.completion - self.start
        return self.wait_time + service * (self.count + 1) / (2 * self.count)


class DiskEnclosure:
    """One disk enclosure: capacity, service queue, power-state timeline.

    Parameters
    ----------
    name:
        Stable identifier (e.g. ``"enc-03"``) used in traces and reports.
    power_model:
        Wattage table; defaults are calibrated to the paper's testbed.
    iops_random / iops_sequential:
        Service capacities (I/Os per second) for random and sequential
        request streams.
    capacity_bytes:
        Usable volume size (paper Table II: 1.7 TB).
    spin_down_timeout:
        Idle seconds before an automatic spin-down when power-off is
        enabled (paper: equal to the break-even time, 52 s).
    """

    def __init__(
        self,
        name: str,
        power_model: PowerModel | None = None,
        iops_random: float = 900.0,
        iops_sequential: float = 2800.0,
        capacity_bytes: Bytes = 0,
        spin_down_timeout: Seconds = 52.0,
    ) -> None:
        if iops_random <= 0 or iops_sequential <= 0:
            raise ValidationError("IOPS capacities must be positive")
        if spin_down_timeout < 0:
            raise ValidationError("spin_down_timeout must be non-negative")
        self.name = name
        self.power_model = power_model or PowerModel()
        self.iops_random = iops_random
        self.iops_sequential = iops_sequential
        self.capacity_bytes = capacity_bytes
        self.spin_down_timeout = spin_down_timeout

        self._clock: Seconds = 0.0
        self._state = PowerState.IDLE
        self._state_entered: Seconds = 0.0
        self._idle_since: Seconds = 0.0
        self._busy_until: Seconds = 0.0
        self._transition_end: Seconds = 0.0
        self._power_off_enabled = False

        self._hold_awake_until: Seconds = 0.0
        self._external_energy: Joules = 0.0
        #: Per-state wattage, precomputed once: :meth:`_accrue` runs
        #: several times per served I/O and must not rebuild the power
        #: model's lookup table each time (the model is frozen, so the
        #: snapshot can never go stale).
        self._watts_by_state: dict[PowerState, Watts] = {
            state: self.power_model.watts(state) for state in PowerState
        }
        self._energy_by_state: dict[PowerState, Joules] = {
            state: 0.0 for state in PowerState
        }
        self._time_by_state: dict[PowerState, Seconds] = {
            state: 0.0 for state in PowerState
        }
        self.spin_up_count = 0
        self.spin_down_count = 0
        self.io_count = 0
        self.read_count = 0
        self.write_count = 0
        self.last_io_time: Seconds | None = None
        #: Spin-up events as (time requested, wait imposed) — used by the
        #: runtime trigger logic (paper §V-D).
        self.spin_up_events: list[Seconds] = []

        #: Fault oracle (:mod:`repro.faults`); ``None`` outside fault runs.
        self._fault_clock: FaultClock | None = None
        #: Set while the in-progress spin-up is fated to fail.
        self._spin_up_failing = False
        #: Virtual times at which injected spin-up attempts failed —
        #: consulted by the degraded-mode gate in the policies.
        self.spin_up_failure_times: list[Seconds] = []

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Seconds:
        """Time up to which the energy timeline has been settled."""
        return self._clock

    @property
    def state(self) -> PowerState:
        """Power state as of :attr:`clock`."""
        return self._state

    @property
    def power_off_enabled(self) -> bool:
        """Whether the policy allows this enclosure to spin down."""
        return self._power_off_enabled

    @property
    def busy_until(self) -> Seconds:
        """Completion time of the last queued I/O."""
        return self._busy_until

    def energy_joules(self, state: PowerState | None = None) -> Joules:
        """Energy accumulated so far, total or for one state.

        The total includes externally-charged energy (throttled
        background transfers accounted outside the state machine).
        """
        if state is not None:
            return self._energy_by_state[state]
        return sum(self._energy_by_state.values()) + self._external_energy

    def time_in_state(self, state: PowerState) -> Seconds:
        """Seconds spent in ``state`` so far."""
        return self._time_by_state[state]

    def average_watts(self) -> Watts:
        """Average power draw over the settled timeline."""
        if self._clock <= 0:
            return self.power_model.watts(self._state)
        return self.energy_joules() / self._clock

    # ------------------------------------------------------------------
    # policy control
    # ------------------------------------------------------------------
    def enable_power_off(self, now: Seconds) -> None:
        """Allow this enclosure to spin down after the idle timeout."""
        self.settle(now)
        if not self._power_off_enabled:
            self._power_off_enabled = True
            # Restart the idle clock so a long-idle enclosure does not
            # instantly vanish at the exact policy switch instant.
            if self._state is PowerState.IDLE:
                self._idle_since = max(self._idle_since, now - 0.0)

    def disable_power_off(self, now: Seconds) -> None:
        """Forbid spinning down.  An already-off enclosure stays off until
        its next I/O (spinning every enclosure up eagerly would charge the
        policy change itself, which no evaluated method does)."""
        self.settle(now)
        self._power_off_enabled = False

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def set_fault_clock(self, clock: "FaultClock") -> None:
        """Attach the simulation's fault oracle (:mod:`repro.faults`)."""
        self._fault_clock = clock

    def _check_outage(self, at: Seconds) -> None:
        """Refuse service while inside an injected outage window."""
        if self._fault_clock is None:
            return
        outage = self._fault_clock.outage_at(self.name, at)
        if outage is not None:
            raise EnclosureUnavailableError(self.name, at, outage.end)

    # ------------------------------------------------------------------
    # timeline
    # ------------------------------------------------------------------
    def _transition(self, target: PowerState, at: Seconds) -> None:
        """Move to ``target``, auditing against the legal transition graph.

        Every state change funnels through here so that fault injection
        (which adds paths like a failed spin-up) can never push the
        machine across an edge that :data:`~repro.storage.power.LEGAL_TRANSITIONS`
        does not contain — that would be a simulator bug and raises
        :class:`~repro.errors.AuditError` instead of silently clamping.
        """
        # can_transition(), inlined: transitions fire about twice per
        # served I/O and the audit must stay on even in the hot path.
        if (self._state, target) not in LEGAL_TRANSITIONS:
            raise AuditError(
                f"{self.name}: illegal power-state transition "
                f"{self._state.value} -> {target.value} at t={at:.3f}s"
            )
        self._state = target
        self._state_entered = at

    def _accrue(self, state: PowerState, duration: Seconds) -> None:
        if duration < 0:
            raise PowerStateError(
                f"negative accrual of {duration} s in state {state} "
                f"on {self.name}"
            )
        self._energy_by_state[state] += self._watts_by_state[state] * duration
        self._time_by_state[state] += duration

    def settle(self, now: Seconds) -> None:
        """Advance the energy timeline to ``now``.

        Idempotent for ``now <= clock``.  Handles ACTIVE→IDLE when the
        queue drains, and IDLE→SPIN_DOWN→OFF when power-off is enabled and
        the idle timeout elapses.
        """
        if now <= self._clock:
            return
        # The ACTIVE and IDLE branches inline :meth:`_accrue` (including
        # its negative-duration audit): they run a couple of times per
        # served I/O, and the dict/attribute traffic through hoisted
        # locals is what keeps the batched pump's frame count down.
        energy = self._energy_by_state
        time_in = self._time_by_state
        watts = self._watts_by_state
        active = PowerState.ACTIVE
        idle = PowerState.IDLE
        while self._clock < now:
            if self._state is active:
                busy_until = self._busy_until
                end = busy_until if busy_until < now else now
                duration = end - self._clock
                if duration < 0:
                    raise PowerStateError(
                        f"negative accrual of {duration} s in state "
                        f"{active} on {self.name}"
                    )
                energy[active] += watts[active] * duration
                time_in[active] += duration
                self._clock = end
                if end >= busy_until:
                    self._transition(idle, end)
                    self._idle_since = end
            elif self._state is idle:
                end = now
                spins_down = False
                if self._power_off_enabled:
                    spin_at = max(
                        self._idle_since + self.spin_down_timeout,
                        self._hold_awake_until,
                    )
                    if spin_at <= now:
                        end = spin_at
                        spins_down = True
                duration = end - self._clock
                if duration < 0:
                    raise PowerStateError(
                        f"negative accrual of {duration} s in state "
                        f"{idle} on {self.name}"
                    )
                energy[idle] += watts[idle] * duration
                time_in[idle] += duration
                self._clock = end
                if spins_down:
                    self._begin_spin_down()
            elif self._state is PowerState.SPIN_DOWN:
                end = min(now, self._transition_end)
                self._accrue(PowerState.SPIN_DOWN, end - self._clock)
                self._clock = end
                if self._clock >= self._transition_end:
                    self._transition(PowerState.OFF, self._clock)
            elif self._state is PowerState.OFF:
                self._accrue(PowerState.OFF, now - self._clock)
                self._clock = now
            elif self._state is PowerState.SPIN_UP:
                end = min(now, self._transition_end)
                self._accrue(PowerState.SPIN_UP, end - self._clock)
                self._clock = end
                if self._clock >= self._transition_end:
                    if self._spin_up_failing:
                        # Injected transient failure: the motor spins back
                        # down having burned the attempt's time and energy.
                        self._spin_up_failing = False
                        self._transition(PowerState.OFF, self._clock)
                        self.spin_up_failure_times.append(self._clock)
                    else:
                        self._transition(PowerState.IDLE, self._clock)
                        self._idle_since = self._clock
            else:  # pragma: no cover - enum is closed
                raise PowerStateError(f"unknown state {self._state}")

    def _begin_spin_down(self) -> None:
        self._transition(PowerState.SPIN_DOWN, self._clock)
        self._transition_end = self._clock + self.power_model.spin_down_seconds
        self.spin_down_count += 1

    def _ensure_on(self) -> None:
        """Walk the timeline forward until the enclosure is spinning.

        May advance :attr:`clock` past the caller's ``now`` — the extra
        time is the spin-up wait the arriving I/O must absorb.

        Under fault injection a spin-up attempt may fail: the attempt's
        full time and energy are charged, the machine returns to OFF, and
        :class:`~repro.errors.SpinUpFailedError` is raised for the
        controller's retry logic.  Failure streaks are finite by
        construction, so retrying eventually succeeds.
        """
        if self._state is PowerState.SPIN_DOWN:
            # A request arrived mid-spin-down: the platters must stop
            # before they can spin up again.
            self.settle(self._transition_end)
        if self._state is PowerState.OFF:
            verdict = None
            if self._fault_clock is not None:
                verdict = self._fault_clock.spin_up_attempt(
                    self.name, self._clock
                )
            self._transition(PowerState.SPIN_UP, self._clock)
            seconds = self.power_model.spin_up_seconds
            if verdict is not None and verdict.seconds_multiplier > 1.0:
                seconds *= verdict.seconds_multiplier
            self._transition_end = self._clock + seconds
            self.spin_up_count += 1
            self.spin_up_events.append(self._clock)
            if verdict is not None and verdict.fails:
                self._spin_up_failing = True
                failed_at = self._clock
                self.settle(self._transition_end)
                raise SpinUpFailedError(self.name, failed_at)
        if self._state is PowerState.SPIN_UP:
            self.settle(self._transition_end)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def service_time(self, count: int, sequential: bool) -> Seconds:
        """Pure service time for a batch of ``count`` I/Os."""
        if count <= 0:
            raise ValidationError("count must be positive")
        rate = self.iops_sequential if sequential else self.iops_random
        return count / rate

    def submit(
        self,
        now: Seconds,
        count: int = 1,
        read: bool = True,
        sequential: bool = False,
    ) -> IOResult:
        """Submit a batch of I/Os arriving at ``now``; returns timing.

        Handles spin-up (with its wait charged to the request), queueing
        behind earlier requests, and the ACTIVE energy of the service
        itself.  ``now`` may be earlier than the settled clock (the
        enclosure was busy servicing a prior spin-up); the request then
        queues at the current clock.
        """
        if count <= 0:
            raise ValidationError("count must be positive")
        self.settle(max(now, self._clock))
        self._check_outage(max(now, self._clock))
        self._ensure_on()
        start = max(now, self._clock, self._busy_until)
        # The queue (or spin-up wait) may have pushed the start into an
        # outage window that opened after arrival — refuse before any
        # service state is mutated; the controller retries past the window.
        self._check_outage(start)
        self.settle(start)
        service = self.service_time(count, sequential)
        completion = start + service
        if self._fault_clock is not None:
            self._fault_clock.note_service(self.name, start)
        if self._state is not PowerState.ACTIVE:
            self._transition(PowerState.ACTIVE, start)
        self._busy_until = max(self._busy_until, completion)
        self.io_count += count
        if read:
            self.read_count += count
        else:
            self.write_count += count
        self.last_io_time = now
        return IOResult(arrival=now, start=start, completion=completion, count=count)

    def submit_one(
        self,
        now: Seconds,
        read: bool,
        sequential: bool,
    ) -> Seconds:
        """Serve a single I/O; returns its mean response time in seconds.

        The allocation-free specialization of :meth:`submit` for
        ``count=1`` that the batched replay pump drives: no
        :class:`IOResult` is built, and the no-fault run skips the
        outage/spin-up-failure machinery entirely.  Kept
        operation-for-operation float-identical to
        ``submit(now, count=1, ...).mean_response_time`` — the golden
        bit-identity test holds both paths to the same timeline.
        """
        if self._fault_clock is not None:
            return self.submit(
                now, count=1, read=read, sequential=sequential
            ).mean_response_time
        self.settle(now)
        state = self._state
        if state is not PowerState.ACTIVE and state is not PowerState.IDLE:
            self._ensure_on()
        start = now
        if self._clock > start:
            start = self._clock
        if self._busy_until > start:
            start = self._busy_until
        # settle(start) is a no-op unless the queue pushed the start past
        # the settled clock (start >= clock by construction).
        if start > self._clock:
            self.settle(start)
        # 1/rate == service_time(1, sequential) exactly (1 converts to
        # 1.0 with no rounding).
        service = 1.0 / (self.iops_sequential if sequential else self.iops_random)
        completion = start + service
        if self._state is not PowerState.ACTIVE:
            self._transition(PowerState.ACTIVE, start)
        if completion > self._busy_until:
            self._busy_until = completion
        self.io_count += 1
        if read:
            self.read_count += 1
        else:
            self.write_count += 1
        self.last_io_time = now
        # mean response for count=1: wait + service*(1+1)/(2*1) == wait
        # + service, since service*2/2 is exact in floating point.
        return (start - now) + service

    def background_transfer(
        self,
        start: Seconds,
        duration: Seconds,
        busy_seconds: Seconds,
        count: int,
        read: bool,
    ) -> None:
        """Charge a throttled background transfer (data migration, §V-A).

        The transfer runs interleaved with application I/O over
        ``[start, start + duration]``: the enclosure is kept awake for
        that span (it cannot spin down mid-copy) and the transfer's
        ACTIVE-over-IDLE energy delta for ``busy_seconds`` of actual
        platter time is charged outside the state machine — it never
        occupies the service queue, which is exactly what "controls data
        transfer I/O throughputs so as to not influence the
        applications' performance" means.
        """
        if duration < 0 or busy_seconds < 0:
            raise ValidationError("duration and busy_seconds must be non-negative")
        if count <= 0:
            raise ValidationError("count must be positive")
        # Entirely lazy: the transfer may be scheduled in the future (the
        # migration engine serializes moves), so the state machine is not
        # advanced here — that would turn the settled clock into a queue
        # barrier for earlier application I/O.  The hold-awake window is
        # honoured lazily by :meth:`settle`'s idle branch.
        self._hold_awake_until = max(self._hold_awake_until, start + duration)
        delta = self.power_model.active_watts - self.power_model.idle_watts
        self._external_energy += delta * busy_seconds
        self.io_count += count
        if read:
            self.read_count += count
        else:
            self.write_count += count
        if self.last_io_time is None or start > self.last_io_time:
            self.last_io_time = start

    def occupy(
        self,
        now: Seconds,
        seconds: Seconds,
        count: int = 1,
        read: bool = True,
    ) -> IOResult:
        """Occupy the enclosure for a bulk transfer of known duration.

        Bulk operations (preload bursts, write-delay flushes, migration
        copies) are bandwidth-dominated rather than IOPS-dominated, so the
        caller computes their duration from bytes / bandwidth and this
        method charges the ACTIVE time directly.  Queueing and spin-up
        behave exactly as in :meth:`submit`.
        """
        if seconds < 0:
            raise ValidationError("seconds must be non-negative")
        if count <= 0:
            raise ValidationError("count must be positive")
        self.settle(max(now, self._clock))
        self._check_outage(max(now, self._clock))
        self._ensure_on()
        start = max(now, self._clock, self._busy_until)
        self._check_outage(start)
        self.settle(start)
        completion = start + seconds
        if self._fault_clock is not None:
            self._fault_clock.note_service(self.name, start)
        if self._state is not PowerState.ACTIVE:
            self._transition(PowerState.ACTIVE, start)
        self._busy_until = max(self._busy_until, completion)
        self.io_count += count
        if read:
            self.read_count += count
        else:
            self.write_count += count
        self.last_io_time = now
        return IOResult(arrival=now, start=start, completion=completion, count=count)

    def finish(self, now: Seconds) -> None:
        """Settle the timeline to the end of the run."""
        self.settle(max(now, self._clock))

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable power/energy state (:mod:`repro.persistence`).

        Captures the settled timeline and every accumulated book;
        construction wiring (the power model, capacities, the fault
        clock) and the derived ``_watts_by_state`` table are rebuilt by
        the resume path, never stored.  Read-only: the timeline is
        **not** settled here — capture happens at a record boundary
        where the caller controls exactly what has been settled.
        """
        return {
            "clock": self._clock,
            "state": self._state.value,
            "state_entered": self._state_entered,
            "idle_since": self._idle_since,
            "busy_until": self._busy_until,
            "transition_end": self._transition_end,
            "power_off_enabled": self._power_off_enabled,
            "hold_awake_until": self._hold_awake_until,
            "external_energy": self._external_energy,
            "energy_by_state": {
                state.value: joules
                for state, joules in self._energy_by_state.items()
            },
            "time_by_state": {
                state.value: seconds
                for state, seconds in self._time_by_state.items()
            },
            "spin_up_count": self.spin_up_count,
            "spin_down_count": self.spin_down_count,
            "io_count": self.io_count,
            "read_count": self.read_count,
            "write_count": self.write_count,
            "last_io_time": self.last_io_time,
            "spin_up_events": list(self.spin_up_events),
            "spin_up_failing": self._spin_up_failing,
            "spin_up_failure_times": list(self.spin_up_failure_times),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the enclosure exactly as :meth:`snapshot_state` captured it."""
        self._clock = state["clock"]
        self._state = PowerState(state["state"])
        self._state_entered = state["state_entered"]
        self._idle_since = state["idle_since"]
        self._busy_until = state["busy_until"]
        self._transition_end = state["transition_end"]
        self._power_off_enabled = state["power_off_enabled"]
        self._hold_awake_until = state["hold_awake_until"]
        self._external_energy = state["external_energy"]
        self._energy_by_state = {
            PowerState(value): joules
            for value, joules in state["energy_by_state"].items()
        }
        self._time_by_state = {
            PowerState(value): seconds
            for value, seconds in state["time_by_state"].items()
        }
        self.spin_up_count = state["spin_up_count"]
        self.spin_down_count = state["spin_down_count"]
        self.io_count = state["io_count"]
        self.read_count = state["read_count"]
        self.write_count = state["write_count"]
        self.last_io_time = state["last_io_time"]
        self.spin_up_events = list(state["spin_up_events"])
        self._spin_up_failing = state["spin_up_failing"]
        self.spin_up_failure_times = list(state["spin_up_failure_times"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskEnclosure({self.name!r}, state={self._state.value}, "
            f"clock={self._clock:.1f}, ios={self.io_count})"
        )
