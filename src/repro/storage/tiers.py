"""Typed storage tiers: FLASH / HDD / ARCHIVE.

The paper's testbed is a single-technology array — every enclosure is the
same 15-HDD RAID-6 group, and energy is saved by spinning enclosures
down.  Production storage saves energy by *moving data across tiers* as
well: a small always-on flash tier absorbs the hot set, powered HDD
enclosures serve the warm set, and a cheap high-latency archive tier
holds frozen data at a fraction of the wattage.

This module introduces the tier vocabulary on top of the existing
:class:`~repro.storage.enclosure.DiskEnclosure` machinery:

* :class:`TierKind` — the technology class, ordered fastest→coldest.
* :class:`StorageTier` — a named group of devices with a per-byte
  capacity cost; the tier's power model, service-time model, and
  capacity live on its member devices (a ``DiskEnclosure`` per device).
* :class:`FlashTier` / :class:`ArchiveTier` — device implementations:
  the flash device is always-on (no platters to spin down), the archive
  device is slow, cheap, and aggressively power-managed.  A plain
  :class:`DiskEnclosure` is the HDD-tier device.
* :class:`TierLedger` — exact integer byte books per tier
  (``bytes_in`` / ``bytes_out``), maintained by the virtualization
  layer so the invariant auditor can prove, per tier, that
  ``bytes_in − bytes_out`` equals the bytes currently placed there.

Legacy single-HDD-tier configurations never construct any of this; the
virtualization layer synthesizes one implicit HDD tier and all tier
bookkeeping stays integer-only, so legacy replays are bit-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.storage.enclosure import DiskEnclosure
from repro.storage.power import SSD_POWER_MODEL, PowerModel
from repro.units import Bytes, Seconds

__all__ = [
    "ARCHIVE_COST_PER_BYTE",
    "ARCHIVE_POWER_MODEL",
    "ArchiveTier",
    "FLASH_COST_PER_BYTE",
    "FlashTier",
    "HDD_COST_PER_BYTE",
    "StorageTier",
    "TierKind",
    "TierLedger",
]

#: Relative capacity cost of one byte on each technology (arbitrary cost
#: units; only the ratios matter for the frontier).  Flash is ~8× HDD,
#: archive ~1/4 of HDD — coarse 2012-era street-price ratios.
FLASH_COST_PER_BYTE = 8.0e-9
HDD_COST_PER_BYTE = 1.0e-9
ARCHIVE_COST_PER_BYTE = 2.5e-10


class TierKind(enum.Enum):
    """Technology class of a storage tier, ordered fastest → coldest."""

    FLASH = "flash"
    HDD = "hdd"
    ARCHIVE = "archive"

    @property
    def rank(self) -> int:
        """Position in the performance order (0 = fastest).

        Promotions move an item to a strictly lower rank, demotions to a
        strictly higher one; the executor validates direction with this.
        """
        return _TIER_RANKS[self]


#: Performance order of the tier kinds (0 = fastest, serves the hot set).
_TIER_RANKS: dict[TierKind, int] = {
    TierKind.FLASH: 0,
    TierKind.HDD: 1,
    TierKind.ARCHIVE: 2,
}


#: Power model of one archive-tier device: a dense, slow shelf (think
#: massive-array-of-idle-disks) that is cheap to keep off and expensive
#: to wake — long spin-up, modest active draw.  Break-even ≈ 37 s.
ARCHIVE_POWER_MODEL = PowerModel(
    active_watts=160.0,
    idle_watts=120.0,
    off_watts=6.0,
    spin_up_watts=640.0,
    spin_up_seconds=6.0,
    spin_down_watts=90.0,
    spin_down_seconds=3.0,
)


@dataclass(frozen=True)
class StorageTier:
    """One typed tier: a named, ordered group of storage devices.

    The tier is *descriptive* wiring — the physical behaviour (power
    model, IOPS capacities, capacity bytes) lives on the member device
    objects registered with the virtualization layer under the names in
    :attr:`devices`.  ``cost_per_byte`` is the relative capacity cost
    used for the energy-vs-latency-vs-cost frontier (flash ≫ HDD ≫
    archive).
    """

    name: str
    kind: TierKind
    devices: tuple[str, ...]
    cost_per_byte: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("tier name must be non-empty")
        if not self.devices:
            raise ValidationError(f"tier {self.name!r} has no devices")
        if len(set(self.devices)) != len(self.devices):
            raise ValidationError(
                f"tier {self.name!r} lists duplicate devices: {self.devices}"
            )
        if self.cost_per_byte <= 0:
            raise ValidationError(
                f"tier {self.name!r} cost_per_byte must be positive, "
                f"got {self.cost_per_byte}"
            )


class FlashTier(DiskEnclosure):
    """A flash (SSD) device: always-on, low-latency, expensive per byte.

    Reuses the enclosure state machine with the calibrated
    :data:`~repro.storage.power.SSD_POWER_MODEL`, but ignores power-off
    enablement entirely: there are no platters to spin down, so the
    device never leaves ACTIVE/IDLE and its spin-up wait can never be
    charged to an I/O.
    """

    #: Default service capacities of one flash device (I/Os per second).
    DEFAULT_IOPS_RANDOM = 20000.0
    DEFAULT_IOPS_SEQUENTIAL = 40000.0

    def __init__(
        self,
        name: str,
        capacity_bytes: Bytes = 0,
        iops_random: float = DEFAULT_IOPS_RANDOM,
        iops_sequential: float = DEFAULT_IOPS_SEQUENTIAL,
        power_model: PowerModel | None = None,
    ) -> None:
        super().__init__(
            name,
            power_model=power_model or SSD_POWER_MODEL,
            iops_random=iops_random,
            iops_sequential=iops_sequential,
            capacity_bytes=capacity_bytes,
            spin_down_timeout=0.0,
        )

    def enable_power_off(self, now: Seconds) -> None:
        """Ignore power-off enablement: a flash device is always on.

        The timeline is still settled so the call remains a legal
        synchronization point for the executor.
        """
        self.settle(now)


class ArchiveTier(DiskEnclosure):
    """An archive device: high-latency, dense, cheap, aggressively idle.

    Modelled as a slow enclosure with the
    :data:`ARCHIVE_POWER_MODEL`; policies are expected to keep its
    power-off function enabled, so it spends nearly all of its life OFF
    and every access pays the long spin-up.
    """

    #: Default service capacities of one archive device (I/Os per second).
    DEFAULT_IOPS_RANDOM = 120.0
    DEFAULT_IOPS_SEQUENTIAL = 800.0
    #: Default idle window before the archive shelf powers itself down.
    DEFAULT_SPIN_DOWN_TIMEOUT = 40.0

    def __init__(
        self,
        name: str,
        capacity_bytes: Bytes = 0,
        iops_random: float = DEFAULT_IOPS_RANDOM,
        iops_sequential: float = DEFAULT_IOPS_SEQUENTIAL,
        power_model: PowerModel | None = None,
        spin_down_timeout: Seconds = DEFAULT_SPIN_DOWN_TIMEOUT,
    ) -> None:
        super().__init__(
            name,
            power_model=power_model or ARCHIVE_POWER_MODEL,
            iops_random=iops_random,
            iops_sequential=iops_sequential,
            capacity_bytes=capacity_bytes,
            spin_down_timeout=spin_down_timeout,
        )


@dataclass
class TierLedger:
    """Exact per-tier byte books: bytes that entered and left each tier.

    Maintained by :class:`~repro.storage.virtualization.BlockVirtualization`
    on every placement mutation (initial placement, migration, replica
    creation/removal).  All arithmetic is integer, so the conservation
    law the auditor checks —

    ``bytes_in[tier] − bytes_out[tier] == bytes currently placed on tier``

    — holds *exactly*, and maintaining the ledger during a legacy
    single-tier replay cannot perturb any float in the simulation.
    """

    bytes_in: dict[str, int] = field(default_factory=dict)
    bytes_out: dict[str, int] = field(default_factory=dict)

    def register_tier(self, tier_name: str) -> None:
        """Open (zeroed) books for a tier."""
        self.bytes_in.setdefault(tier_name, 0)
        self.bytes_out.setdefault(tier_name, 0)

    def record_in(self, tier_name: str, size_bytes: int) -> None:
        """Account ``size_bytes`` entering the tier."""
        if size_bytes < 0:
            raise ValidationError("size_bytes must be non-negative")
        self.bytes_in[tier_name] += size_bytes

    def record_out(self, tier_name: str, size_bytes: int) -> None:
        """Account ``size_bytes`` leaving the tier."""
        if size_bytes < 0:
            raise ValidationError("size_bytes must be non-negative")
        self.bytes_out[tier_name] += size_bytes

    def net_bytes(self, tier_name: str) -> int:
        """Bytes the ledger says the tier currently holds (in − out)."""
        return self.bytes_in[tier_name] - self.bytes_out[tier_name]

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable ledger books (:mod:`repro.persistence`)."""
        return {
            "bytes_in": dict(self.bytes_in),
            "bytes_out": dict(self.bytes_out),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the books exactly as :meth:`snapshot_state` captured them."""
        self.bytes_in = dict(state["bytes_in"])
        self.bytes_out = dict(state["bytes_out"])
