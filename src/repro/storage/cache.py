"""Battery-backed storage cache with preload and write-delay partitions.

The paper's enterprise storage has a 2 GB non-volatile cache (Table II)
split three ways by the proposed method:

* a **preload partition** (500 MB) pinning whole P1 data items so reads
  never reach the disk enclosures (§II-E.2, §IV-F);
* a **write-delay partition** (500 MB) buffering dirty blocks of P2 data
  items, flushed in bulk when the *dirty block rate* (50 %) is reached
  (§IV-E, §V-B);
* the remainder as an ordinary block-grained LRU serving everything else.

Addresses are logical: ``(data item id, block index)``.  The cache is a
pure data structure — the :class:`~repro.storage.controller.StorageController`
decides what physical I/O each hit/miss/flush implies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro import units
from repro.errors import CapacityError, ValidationError
from repro.units import Bytes

#: Cache lines are tracked at page granularity (64 blocks = 256 KiB) —
#: enterprise controllers manage cache in large segments, and per-4-KiB
#: bookkeeping would dominate simulation time for megabyte-sized I/O.
PAGE_BLOCKS = 64
PAGE_BYTES = PAGE_BLOCKS * units.BLOCK_SIZE


def block_to_page(block: int) -> int:
    """Map a block index to its cache-page index."""
    return block // PAGE_BLOCKS


class LRUBlockCache:
    """Page-grained LRU over ``(item_id, page_index)`` keys."""

    def __init__(self, capacity_bytes: Bytes) -> None:
        if capacity_bytes < 0:
            raise ValidationError("capacity must be non-negative")
        self.capacity_pages = capacity_bytes // PAGE_BYTES
        self._blocks: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._blocks

    def access(self, item_id: str, page: int) -> bool:
        """Touch one page; returns True on hit, inserting on miss.

        Eviction is silent (clean read cache — dirty data lives in the
        write-delay partition, never here).
        """
        key = (item_id, page)
        if key in self._blocks:
            self._blocks.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if self.capacity_pages <= 0:
            return False
        self._blocks[key] = None
        while len(self._blocks) > self.capacity_pages:
            self._blocks.popitem(last=False)
        return False

    def invalidate_item(self, item_id: str) -> int:
        """Drop every cached block of one data item; returns count dropped."""
        doomed = [key for key in self._blocks if key[0] == item_id]
        for key in doomed:
            del self._blocks[key]
        return len(doomed)

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot_state(self) -> dict:
        """Serializable LRU state (:mod:`repro.persistence`).

        The key list preserves recency order (oldest first), which is
        the part of the state that decides future evictions.
        """
        return {
            "blocks": list(self._blocks),
            "hits": self.hits,
            "misses": self.misses,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the LRU exactly as captured, recency order included."""
        self._blocks = OrderedDict(
            ((item, page), None) for item, page in state["blocks"]
        )
        self.hits = state["hits"]
        self.misses = state["misses"]


class PreloadPartition:
    """Cache region pinning whole data items (the preload function).

    Items are pinned until explicitly unpinned at the next management
    point (paper §V-C keeps already-preloaded items).
    """

    def __init__(self, capacity_bytes: Bytes) -> None:
        if capacity_bytes < 0:
            raise ValidationError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._items: dict[str, int] = {}

    @property
    def used_bytes(self) -> Bytes:
        """Bytes currently pinned in the cache."""
        return sum(self._items.values())

    @property
    def free_bytes(self) -> Bytes:
        """Remaining cache capacity in bytes."""
        return self.capacity_bytes - self.used_bytes

    def item_ids(self) -> set[str]:
        """Ids of all pinned items."""
        return set(self._items)

    def fits(self, size_bytes: Bytes) -> bool:
        """Whether an item of this size fits in the free space."""
        return size_bytes <= self.free_bytes

    def pin(self, item_id: str, size_bytes: Bytes) -> None:
        """Pin one data item; raises :class:`CapacityError` if it cannot fit."""
        if size_bytes < 0:
            raise ValidationError("size must be non-negative")
        if item_id in self._items:
            return
        if size_bytes > self.free_bytes:
            raise CapacityError(
                f"preload partition full: need {size_bytes}, "
                f"free {self.free_bytes}"
            )
        self._items[item_id] = size_bytes

    def unpin(self, item_id: str) -> None:
        """Remove the item from the cache, if present."""
        self._items.pop(item_id, None)

    def is_pinned(self, item_id: str) -> bool:
        """Whether the item is currently pinned."""
        return item_id in self._items

    def snapshot_state(self) -> dict:
        """Serializable pin table (:mod:`repro.persistence`)."""
        return {"items": list(self._items.items())}

    def restore_state(self, state: dict) -> None:
        """Restore the pin table exactly as captured."""
        self._items = {item: size for item, size in state["items"]}


@dataclass(frozen=True)
class FlushPlan:
    """What a write-delay flush must write: per-item dirty byte counts."""

    dirty_bytes_by_item: dict[str, Bytes]

    @property
    def total_bytes(self) -> Bytes:
        """Total dirty bytes buffered across all items."""
        return sum(self.dirty_bytes_by_item.values())


class WriteDelayPartition:
    """Cache region buffering dirty blocks of write-delayed data items.

    Only items explicitly selected by the policy (``select``) are
    buffered.  When the number of dirty blocks reaches
    ``dirty_block_rate × capacity`` the partition asks for a bulk flush
    (paper §V-B: "flushes these updated blocks into disk enclosures at one
    time").
    """

    def __init__(self, capacity_bytes: Bytes, dirty_block_rate: float = 0.5) -> None:
        if capacity_bytes < 0:
            raise ValidationError("capacity must be non-negative")
        if not 0 < dirty_block_rate <= 1:
            raise ValidationError("dirty_block_rate must be in (0, 1]")
        self.capacity_bytes = capacity_bytes
        self.dirty_block_rate = dirty_block_rate
        self._selected: set[str] = set()
        self._dirty: dict[str, set[int]] = {}
        self.flush_count = 0
        #: Acknowledged-write conservation books: every page ever absorbed
        #: (acknowledged to the application) is either still dirty here or
        #: has been handed to a flush.  The invariant auditor asserts
        #: ``absorbed_pages == flushed_pages + dirty_pages`` at all times,
        #: which is what "no acknowledged write is ever lost" means in
        #: page units.
        self.absorbed_pages = 0
        self.flushed_pages = 0

    @property
    def capacity_pages(self) -> int:
        """Cache capacity expressed in whole pages."""
        return self.capacity_bytes // PAGE_BYTES

    @property
    def dirty_threshold_pages(self) -> int:
        """Dirty-page count that triggers a bulk flush."""
        return int(self.capacity_pages * self.dirty_block_rate)

    @property
    def dirty_pages(self) -> int:
        """Number of dirty pages currently buffered."""
        return sum(len(pages) for pages in self._dirty.values())

    def selected_items(self) -> set[str]:
        """Ids of items selected for write-delay buffering."""
        return set(self._selected)

    def dirty_items(self) -> list[str]:
        """Ids of items holding dirty pages, in first-dirtied order."""
        return [item for item, pages in self._dirty.items() if pages]

    def is_selected(self, item_id: str) -> bool:
        """Whether the item is selected for write-delay buffering."""
        return item_id in self._selected

    def select(self, item_id: str) -> None:
        """Mark a data item for write delay."""
        self._selected.add(item_id)

    def deselect(self, item_id: str) -> FlushPlan:
        """Stop delaying an item; its dirty blocks must be written out.

        Paper §V-B: "write updated data items onto disk enclosures when
        the write-delay-applied data items are changed."
        """
        self._selected.discard(item_id)
        pages = self._dirty.pop(item_id, set())
        if not pages:
            return FlushPlan({})
        self.flushed_pages += len(pages)
        return FlushPlan({item_id: len(pages) * PAGE_BYTES})

    def absorb_write(self, item_id: str, page: int) -> bool:
        """Buffer one dirty page; True if the caller must now bulk-flush.

        Raises for unselected items — the caller routes those writes to
        the enclosure instead.
        """
        if item_id not in self._selected:
            raise KeyError(f"item {item_id!r} is not write-delay selected")
        pages = self._dirty.setdefault(item_id, set())
        if page not in pages:
            pages.add(page)
            self.absorbed_pages += 1
        return self.dirty_pages >= self.dirty_threshold_pages

    def is_dirty(self, item_id: str, page: int) -> bool:
        """Whether the given page of the item is dirty."""
        return page in self._dirty.get(item_id, ())

    def dirty_bytes_of(self, item_id: str) -> Bytes:
        """Bytes of dirty data buffered for one item (read-only peek).

        Lets the action executor cost a flush without touching the
        partition — a dry run must leave the books bit-identical.
        """
        return len(self._dirty.get(item_id, ())) * PAGE_BYTES

    def flush_item(self, item_id: str) -> FlushPlan:
        """Return one item's dirty pages and clear them (stay selected)."""
        pages = self._dirty.pop(item_id, set())
        if not pages:
            return FlushPlan({})
        self.flushed_pages += len(pages)
        return FlushPlan({item_id: len(pages) * PAGE_BYTES})

    def flush_all(self) -> FlushPlan:
        """Return everything dirty and clear the partition."""
        plan = FlushPlan(
            {
                item_id: len(pages) * PAGE_BYTES
                for item_id, pages in self._dirty.items()
                if pages
            }
        )
        self.flushed_pages += sum(
            len(pages) for pages in self._dirty.values()
        )
        self._dirty.clear()
        self.flush_count += 1
        return plan

    def snapshot_state(self) -> dict:
        """Serializable write-delay state (:mod:`repro.persistence`).

        The dirty map's insertion order is observable state —
        :meth:`dirty_items` reports first-dirtied order — so it is
        captured as an ordered list of ``(item, sorted pages)`` pairs.
        """
        return {
            "selected": sorted(self._selected),
            "dirty": [
                (item, sorted(pages))
                for item, pages in self._dirty.items()
            ],
            "flush_count": self.flush_count,
            "absorbed_pages": self.absorbed_pages,
            "flushed_pages": self.flushed_pages,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the partition exactly as captured."""
        self._selected = set(state["selected"])
        self._dirty = {item: set(pages) for item, pages in state["dirty"]}
        self.flush_count = state["flush_count"]
        self.absorbed_pages = state["absorbed_pages"]
        self.flushed_pages = state["flushed_pages"]


class StorageCache:
    """The full cache: LRU + preload + write-delay partitions.

    Thin façade so the controller manipulates one object; partition
    boundaries are fixed at construction (paper Table II: 500 MB each for
    preload and write delay out of 2 GB).
    """

    def __init__(
        self,
        total_bytes: int = 2 * units.GB,
        preload_bytes: int = 500 * units.MB,
        write_delay_bytes: int = 500 * units.MB,
        dirty_block_rate: float = 0.5,
    ) -> None:
        if preload_bytes + write_delay_bytes > total_bytes:
            raise CapacityError(
                "preload + write-delay partitions exceed total cache size"
            )
        self.total_bytes = total_bytes
        self.lru = LRUBlockCache(total_bytes - preload_bytes - write_delay_bytes)
        self.preload = PreloadPartition(preload_bytes)
        self.write_delay = WriteDelayPartition(write_delay_bytes, dirty_block_rate)

    def read_hit(self, item_id: str, page: int) -> bool:
        """Whether a read of (item, page) is served from cache.

        Preloaded items always hit; write-delayed dirty pages hit (the
        newest data lives in cache); otherwise the LRU decides (and
        absorbs the page on a miss).
        """
        # The partition checks are inlined (same module): this façade is
        # called once per page of every read the replay pump serves.
        if item_id in self.preload._items:
            return True
        if page in self.write_delay._dirty.get(item_id, ()):
            return True
        return self.lru.access(item_id, page)

    def snapshot_state(self) -> dict:
        """Serializable state of all three partitions (:mod:`repro.persistence`)."""
        return {
            "lru": self.lru.snapshot_state(),
            "preload": self.preload.snapshot_state(),
            "write_delay": self.write_delay.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore every partition exactly as captured."""
        self.lru.restore_state(state["lru"])
        self.preload.restore_state(state["preload"])
        self.write_delay.restore_state(state["write_delay"])
