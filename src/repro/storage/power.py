"""Power model for disk enclosures.

The paper's storage model (§II-A, §II-B) treats the **disk enclosure** as
the power-saving unit.  An enclosure is in one of three logical power modes
(*Active*, *Idle*, *Power off*); physically a transition through spin-up /
spin-down consumes extra time and energy, which gives rise to the
**break-even time**: the minimum I/O interval for which powering off saves
energy compared with staying idle.

This module defines :class:`PowerState`, the wattage table
:class:`PowerModel`, and the break-even derivation.  The default model is
calibrated so that the physical break-even time is ~52 s, matching the
paper's Table II value for the Hitachi AMS 2500 testbed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, ValidationError
from repro.units import Joules, Seconds, Watts


class PowerState(enum.Enum):
    """Physical power state of a disk enclosure."""

    ACTIVE = "active"
    IDLE = "idle"
    SPIN_DOWN = "spin_down"
    OFF = "off"
    SPIN_UP = "spin_up"

    # Members are singletons (equality is identity), so identity hashing
    # is equivalent to Enum's name-based hash — minus a Python-level
    # call on every dict/set lookup.  The enclosure energy timeline
    # indexes per-state tables several times per served I/O, which makes
    # this the hottest hash in the whole replay loop.
    __hash__ = object.__hash__

    @property
    def is_on(self) -> bool:
        """Whether the disks are spinning and able to serve I/O soon."""
        return self in (PowerState.ACTIVE, PowerState.IDLE)


#: The legal power-state transition graph of a disk enclosure
#: (§II-A / DiskEnclosure's state machine)::
#:
#:     ACTIVE ⇄ IDLE → SPIN_DOWN → OFF → SPIN_UP → IDLE or ACTIVE
#:
#: Every state change performed by the simulator must be an edge of this
#: graph.  ``repro.devtools`` extracts this table statically (rule R4)
#: to flag code that fabricates transitions outside the
#: :class:`DiskEnclosure` API.
LEGAL_TRANSITIONS: frozenset[tuple[PowerState, PowerState]] = frozenset(
    {
        (PowerState.ACTIVE, PowerState.IDLE),
        (PowerState.IDLE, PowerState.ACTIVE),
        (PowerState.IDLE, PowerState.SPIN_DOWN),
        (PowerState.SPIN_DOWN, PowerState.OFF),
        (PowerState.OFF, PowerState.SPIN_UP),
        (PowerState.SPIN_UP, PowerState.IDLE),
        (PowerState.SPIN_UP, PowerState.ACTIVE),
        # A spin-up attempt can *fail* under fault injection
        # (repro.faults): the motor spins back down and the enclosure
        # returns to OFF, having burned the attempt's time and energy.
        (PowerState.SPIN_UP, PowerState.OFF),
    }
)


def can_transition(source: PowerState, target: PowerState) -> bool:
    """Whether ``source → target`` is an edge of the legal state graph.

    >>> can_transition(PowerState.IDLE, PowerState.SPIN_DOWN)
    True
    >>> can_transition(PowerState.OFF, PowerState.ACTIVE)
    False
    """
    return (source, target) in LEGAL_TRANSITIONS


@dataclass(frozen=True)
class PowerModel:
    """Wattage table and transition costs for one disk enclosure.

    All powers are in watts, times in seconds, energies in joules.

    The defaults describe one enclosure of the paper's testbed (15 × 7200
    rpm SATA HDD, RAID-6) and are calibrated so that
    :attr:`break_even_time` ≈ 52 s (paper Table II).
    """

    active_watts: Watts = 270.0
    idle_watts: Watts = 235.0
    off_watts: Watts = 12.0
    spin_up_watts: Watts = 1120.0
    spin_up_seconds: Seconds = 10.0
    spin_down_watts: Watts = 150.0
    spin_down_seconds: Seconds = 4.0

    def __post_init__(self) -> None:
        if not (0 <= self.off_watts <= self.idle_watts <= self.active_watts):
            raise ConfigurationError(
                "power model requires 0 <= off <= idle <= active watts, got "
                f"off={self.off_watts}, idle={self.idle_watts}, "
                f"active={self.active_watts}"
            )
        if self.spin_up_seconds < 0 or self.spin_down_seconds < 0:
            raise ConfigurationError("transition times must be non-negative")
        if self.spin_up_watts < 0 or self.spin_down_watts < 0:
            raise ConfigurationError("transition powers must be non-negative")
        if math.isclose(self.idle_watts, self.off_watts):
            raise ConfigurationError(
                "idle and off watts must differ for a break-even time to exist"
            )

    def watts(self, state: PowerState) -> Watts:
        """Power draw of the enclosure in ``state``."""
        return {
            PowerState.ACTIVE: self.active_watts,
            PowerState.IDLE: self.idle_watts,
            PowerState.SPIN_DOWN: self.spin_down_watts,
            PowerState.OFF: self.off_watts,
            PowerState.SPIN_UP: self.spin_up_watts,
        }[state]

    @property
    def transition_energy(self) -> Joules:
        """Total energy of one spin-down + spin-up cycle, in joules."""
        return (
            self.spin_up_watts * self.spin_up_seconds
            + self.spin_down_watts * self.spin_down_seconds
        )

    @property
    def transition_seconds(self) -> Seconds:
        """Total time of one spin-down + spin-up cycle."""
        return self.spin_up_seconds + self.spin_down_seconds

    @property
    def break_even_time(self) -> Seconds:
        """Minimum idle gap (seconds) for which power-off saves energy.

        Staying idle for a gap of length ``t`` costs ``idle × t``.
        Powering off costs the transition energy plus ``off`` watts for the
        remainder of the gap.  Equating the two:

        ``t_be = (E_transition − off × t_transition) / (idle − off)``
        """
        extra = self.transition_energy - self.off_watts * self.transition_seconds
        return extra / (self.idle_watts - self.off_watts)

    def energy_if_idle(self, gap_seconds: Seconds) -> Joules:
        """Energy consumed by staying idle across a gap of this length."""
        if gap_seconds < 0:
            raise ValidationError("gap must be non-negative")
        return self.idle_watts * gap_seconds

    def energy_if_power_cycled(self, gap_seconds: Seconds) -> Joules:
        """Energy consumed by spinning down and back up across a gap.

        If the gap is shorter than the combined transition time the cycle
        cannot complete; the model charges the full transition energy
        anyway (the disk must still finish spinning up), which correctly
        penalises cycling across too-short gaps.
        """
        if gap_seconds < 0:
            raise ValidationError("gap must be non-negative")
        off_time = max(0.0, gap_seconds - self.transition_seconds)
        return self.transition_energy + self.off_watts * off_time

    def power_off_saves(self, gap_seconds: Seconds) -> bool:
        """Whether cycling power across this gap beats staying idle."""
        return self.energy_if_power_cycled(gap_seconds) < self.energy_if_idle(
            gap_seconds
        )


@dataclass(frozen=True)
class ControllerPowerModel:
    """Power model of the RAID controller / cache unit.

    The controller stays powered regardless of enclosure states (it hosts
    the battery-backed cache).  The paper's figures show its bar as nearly
    constant across policies; we model a constant base draw plus a small
    per-I/O increment so heavy cache traffic registers slightly.
    """

    base_watts: Watts = 520.0
    joules_per_io: Joules = 0.02

    def energy(self, duration_seconds: Seconds, io_count: int) -> Joules:
        """Total controller energy over a run."""
        if duration_seconds < 0:
            raise ValidationError("duration must be non-negative")
        if io_count < 0:
            raise ValidationError("io_count must be non-negative")
        return self.base_watts * duration_seconds + self.joules_per_io * io_count

    def average_watts(self, duration_seconds: Seconds, io_count: int) -> Watts:
        """Average controller power over a run."""
        if duration_seconds <= 0:
            return self.base_watts
        return self.energy(duration_seconds, io_count) / duration_seconds


#: Default enclosure power model used by the testbed (break-even ≈ 52 s).
DEFAULT_POWER_MODEL = PowerModel()

#: An all-flash enclosure (paper §VIII-D: "Power consumption of SSDs is
#: much smaller than that of HDDs.  Since our proposed approach utilizes
#: the application's I/O behaviors ... it can be applied easily to SSD
#: storage").  No platters: the "spin-up" models controller/flash
#: power-state latching, so the break-even time collapses to ~4 s and
#: far shorter Long Intervals become exploitable.
SSD_POWER_MODEL = PowerModel(
    active_watts=95.0,
    idle_watts=38.0,
    off_watts=2.0,
    spin_up_watts=150.0,
    spin_up_seconds=1.0,
    spin_down_watts=20.0,
    spin_down_seconds=0.5,
)

#: Default controller power model.
DEFAULT_CONTROLLER_POWER_MODEL = ControllerPowerModel()
