"""Storage substrate: the simulated enterprise storage unit.

This subpackage stands in for the paper's Hitachi AMS 2500 testbed and
power meter (see DESIGN.md §2): disk enclosures with a power-state
machine and exact energy integration, a battery-backed cache with preload
and write-delay partitions, a block-virtualization layer, a storage
controller, a migration engine, and a power meter.
"""

from repro.storage.cache import (
    FlushPlan,
    LRUBlockCache,
    PreloadPartition,
    StorageCache,
    WriteDelayPartition,
)
from repro.storage.controller import StorageController
from repro.storage.enclosure import DiskEnclosure, IOResult
from repro.storage.meter import PowerMeter, PowerReading
from repro.storage.migration import MigrationEngine, Move, PlacementPlan
from repro.storage.power import ControllerPowerModel, PowerModel, PowerState
from repro.storage.tiers import (
    ArchiveTier,
    FlashTier,
    StorageTier,
    TierKind,
    TierLedger,
)
from repro.storage.virtualization import (
    BlockVirtualization,
    PhysicalExtent,
    Volume,
)

__all__ = [
    "ArchiveTier",
    "BlockVirtualization",
    "ControllerPowerModel",
    "DiskEnclosure",
    "FlashTier",
    "FlushPlan",
    "IOResult",
    "LRUBlockCache",
    "MigrationEngine",
    "Move",
    "PhysicalExtent",
    "PlacementPlan",
    "PowerMeter",
    "PowerModel",
    "PowerReading",
    "PowerState",
    "PreloadPartition",
    "StorageCache",
    "StorageController",
    "StorageTier",
    "TierKind",
    "TierLedger",
    "Volume",
    "WriteDelayPartition",
]
