"""Storage controller: routes logical I/O through cache to enclosures.

The controller is the RAID-controller analogue of the paper's testbed
(Fig 5): it owns the battery-backed :class:`~repro.storage.cache.StorageCache`,
consults the :class:`~repro.storage.virtualization.BlockVirtualization`
mapping, and issues physical I/O to :class:`~repro.storage.enclosure.DiskEnclosure`
objects.  It also exposes the three power-saving primitives the runtime
method drives (paper §V): item migration, preload, and write-delay
control — each of which generates *real* physical I/O in the simulation,
so their energy and response-time costs are charged, exactly as the
paper's measurements include them (§VII-A.4).

Physical I/O is reported to an optional tap (the Storage Monitor
subscribes there) as :class:`~repro.trace.records.PhysicalIORecord`.
"""

from __future__ import annotations

from typing import Callable

from repro import units
from repro.errors import CapacityError, MappingError, ValidationError
from repro.storage import cache as cache_mod
from repro.storage.cache import StorageCache
from repro.storage.enclosure import DiskEnclosure, IOResult
from repro.storage.virtualization import BlockVirtualization
from repro.trace.records import IOType, LogicalIORecord, PhysicalIORecord

#: Latency of an I/O served entirely from the controller cache.
CACHE_HIT_LATENCY = 0.0002

#: Transfer unit used to count physical I/Os of bulk operations.
BULK_IO_UNIT = units.MB

#: Sustained per-enclosure bandwidth for bulk sequential transfers
#: (preload bursts and write-delay flushes).
BULK_BANDWIDTH_BPS = 150.0 * units.MB

#: Migration copies run in chunks of this size so application I/O only
#: ever queues behind one chunk (~0.4 s), not behind a whole data item.
MIGRATION_CHUNK_BYTES = 64 * units.MB


PhysicalTap = Callable[[PhysicalIORecord], None]


class StorageController:
    """The storage unit's controller: cache + routing + power primitives."""

    def __init__(
        self,
        virtualization: BlockVirtualization,
        cache: StorageCache,
        migration_throughput_bps: float = 60.0 * units.MB,
        bulk_bandwidth_bps: float = BULK_BANDWIDTH_BPS,
        physical_tap: PhysicalTap | None = None,
    ) -> None:
        if migration_throughput_bps <= 0:
            raise ValidationError("migration throughput must be positive")
        if bulk_bandwidth_bps <= 0:
            raise ValidationError("bulk bandwidth must be positive")
        self.virtualization = virtualization
        self.cache = cache
        self.migration_throughput_bps = migration_throughput_bps
        self.bulk_bandwidth_bps = bulk_bandwidth_bps
        self._physical_tap = physical_tap

        self.logical_io_count = 0
        self.cache_hit_count = 0
        self.migrated_bytes = 0
        self.migration_count = 0
        self.preloaded_bytes = 0
        self.flushed_bytes = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def set_physical_tap(self, tap: PhysicalTap | None) -> None:
        """Attach the storage monitor's physical-trace listener."""
        self._physical_tap = tap

    def _emit_physical(
        self,
        timestamp: float,
        enclosure: str,
        block: int,
        count: int,
        io_type: IOType,
        item_id: str | None,
    ) -> None:
        if self._physical_tap is None:
            return
        self._physical_tap(
            PhysicalIORecord(
                timestamp=timestamp,
                enclosure=enclosure,
                block_address=block,
                count=count,
                io_type=io_type,
                item_id=item_id,
            )
        )

    def _physical_io(
        self,
        now: float,
        item_id: str,
        offset: int,
        io_type: IOType,
        sequential: bool,
    ) -> IOResult:
        enclosure_name, block = self.virtualization.resolve(item_id, offset)
        enclosure = self.virtualization.enclosure(enclosure_name)
        result = enclosure.submit(
            now, count=1, read=io_type.is_read, sequential=sequential
        )
        self._emit_physical(now, enclosure_name, block, 1, io_type, item_id)
        return result

    def _bulk_transfer(
        self,
        now: float,
        enclosure: DiskEnclosure,
        size_bytes: int,
        io_type: IOType,
        item_id: str | None,
        bandwidth_bps: float,
    ) -> IOResult:
        seconds = size_bytes / bandwidth_bps
        count = max(1, size_bytes // BULK_IO_UNIT)
        result = enclosure.occupy(
            now, seconds, count=count, read=io_type.is_read
        )
        base_block = 0
        if item_id is not None and self.virtualization.has_item(item_id):
            base_block = self.virtualization.extent_of(item_id).base_block
        self._emit_physical(now, enclosure.name, base_block, count, io_type, item_id)
        return result

    # ------------------------------------------------------------------
    # application I/O path
    # ------------------------------------------------------------------
    def submit(self, record: LogicalIORecord) -> float:
        """Serve one application I/O; returns its response time in seconds.

        Reads are served from cache when possible (preloaded items always
        hit; otherwise the LRU decides).  Writes to write-delay-selected
        items are absorbed into the cache — triggering a bulk flush when
        the dirty-block rate is reached — while all other writes go to the
        enclosure.  The battery-backed cache makes absorbed writes durable,
        so their response is the cache latency (paper §II-E.2).
        """
        self.logical_io_count += 1
        item_id = record.item_id
        if not self.virtualization.has_item(item_id):
            raise MappingError(f"I/O to unplaced data item {item_id!r}")

        if record.is_read:
            # Evaluate every page (no short-circuit) so each one enters
            # the LRU; the I/O is a hit only if all of them already were.
            hits = [
                self.cache.read_hit(item_id, page)
                for page in record.page_range(cache_mod.PAGE_BYTES)
            ]
            if all(hits):
                self.cache_hit_count += 1
                return CACHE_HIT_LATENCY
            result = self._physical_io(
                record.timestamp,
                item_id,
                record.offset,
                IOType.READ,
                record.sequential,
            )
            return result.mean_response_time

        if self.cache.write_delay.is_selected(item_id):
            self.cache_hit_count += 1
            needs_flush = False
            for page in record.page_range(cache_mod.PAGE_BYTES):
                if self.cache.write_delay.absorb_write(item_id, page):
                    needs_flush = True
            if needs_flush:
                self.flush_write_delay(record.timestamp)
            return CACHE_HIT_LATENCY

        result = self._physical_io(
            record.timestamp,
            item_id,
            record.offset,
            IOType.WRITE,
            record.sequential,
        )
        return result.mean_response_time

    # ------------------------------------------------------------------
    # power-saving primitives (paper §V)
    # ------------------------------------------------------------------
    def preload_item(self, now: float, item_id: str) -> float:
        """Load a whole data item into the preload partition.

        Issues a sequential read burst on the item's enclosure (the
        physical cost of preloading, included in the paper's power
        measurements).  Returns the completion time.  No-op for items
        already pinned.
        """
        if self.cache.preload.is_pinned(item_id):
            return now
        size = self.virtualization.item_size(item_id)
        self.cache.preload.pin(item_id, size)
        enclosure = self.virtualization.enclosure_of(item_id)
        result = self._bulk_transfer(
            now, enclosure, size, IOType.READ, item_id, self.bulk_bandwidth_bps
        )
        self.preloaded_bytes += size
        return result.completion

    def unpin_item(self, item_id: str) -> None:
        """Evict a data item from the preload partition (paper §V-C)."""
        self.cache.preload.unpin(item_id)

    def select_write_delay(self, now: float, item_ids: set[str]) -> float:
        """Reconfigure the write-delay item set; flushes deselected items.

        Returns the time at which all deselection flushes complete.
        """
        completion = now
        for stale in self.cache.write_delay.selected_items() - item_ids:
            plan = self.cache.write_delay.deselect(stale)
            completion = max(
                completion, self._execute_flush(now, plan.dirty_bytes_by_item)
            )
        for item_id in item_ids:
            self.cache.write_delay.select(item_id)
        return completion

    def flush_write_delay(self, now: float) -> float:
        """Bulk-write every dirty block to its enclosure (paper §V-B)."""
        plan = self.cache.write_delay.flush_all()
        return self._execute_flush(now, plan.dirty_bytes_by_item)

    def flush_item(self, now: float, item_id: str) -> float:
        """Write one item's dirty pages out (it stays write-delayed).

        Used before migrating a write-delayed item, so its delayed
        writes land on the old home before the mapping changes.
        """
        plan = self.cache.write_delay.flush_item(item_id)
        return self._execute_flush(now, plan.dirty_bytes_by_item)

    def _execute_flush(self, now: float, dirty_bytes_by_item: dict[str, int]) -> float:
        completion = now
        for item_id, size in dirty_bytes_by_item.items():
            if size <= 0:
                continue
            enclosure = self.virtualization.enclosure_of(item_id)
            result = self._bulk_transfer(
                now, enclosure, size, IOType.WRITE, item_id, self.bulk_bandwidth_bps
            )
            completion = max(completion, result.completion)
            self.flushed_bytes += size
        return completion

    def migrate_item(self, now: float, item_id: str, target_enclosure: str) -> float:
        """Move a data item to another enclosure (paper §V-A).

        The copy is throttled to ``migration_throughput_bps`` "so as to
        not influence the applications' performance"; it occupies the
        source (reads) and the target (writes) and is charged to the
        migrated-data counter the paper reports in Figs 10/13/16.
        Returns the completion time.
        """
        src_name = self.virtualization.enclosure_of(item_id).name
        if src_name == target_enclosure:
            return now
        size = self.virtualization.item_size(item_id)
        src = self.virtualization.enclosure(src_name)
        dst = self.virtualization.enclosure(target_enclosure)
        # Validate capacity before any I/O is charged: a failing move
        # must leave the energy accounting untouched.
        if dst.capacity_bytes and (
            self.virtualization.used_bytes(target_enclosure) + size
            > dst.capacity_bytes
        ):
            raise CapacityError(
                f"cannot migrate {item_id!r} to {target_enclosure!r}: "
                "insufficient space"
            )
        # The copy runs in the background at the throttled average rate;
        # its actual platter time is size / bulk bandwidth.  Both
        # enclosures stay awake for the copy's duration and physical
        # records are dropped along it so the interval analysis sees the
        # activity (a migrating enclosure has no Long Interval).
        duration = size / self.migration_throughput_bps
        busy = size / self.bulk_bandwidth_bps
        count = max(1, size // BULK_IO_UNIT)
        src.background_transfer(now, duration, busy, count, read=True)
        dst.background_transfer(now, duration, busy, count, read=False)
        completion = now + duration
        marker = now
        per_marker = max(1, int(count // max(1, duration // 60.0 + 1)))
        while marker < completion:
            self._emit_physical(
                marker, src_name, 0, per_marker, IOType.READ, item_id
            )
            self._emit_physical(
                marker, target_enclosure, 0, per_marker, IOType.WRITE, item_id
            )
            marker += 60.0
        self.virtualization.move_item(item_id, target_enclosure)
        # Cached copies of the moved item remain valid (logical addressing)
        # but the write-delay buffer must target the new enclosure; dirty
        # data was already flushed by the caller before migration.
        self.migrated_bytes += size
        self.migration_count += 1
        return completion

    def charge_block_migration(
        self,
        now: float,
        item_id: str,
        size_bytes: int,
        source_enclosure: str,
        target_enclosure: str,
    ) -> float:
        """Charge a block-grained copy between enclosures (DDR's move).

        Unlike :meth:`migrate_item` this does not remap anything — the
        caller is a physical-block-level policy whose remapping sits
        below our item-grained virtualization — but the I/O, the energy,
        and the migrated-byte accounting are identical.  Returns the
        completion time.
        """
        if size_bytes <= 0:
            raise ValidationError("size_bytes must be positive")
        src = self.virtualization.enclosure(source_enclosure)
        dst = self.virtualization.enclosure(target_enclosure)
        seconds = size_bytes / self.bulk_bandwidth_bps
        read = src.occupy(now, seconds, count=1, read=True)
        write = dst.occupy(now, seconds, count=1, read=False)
        self._emit_physical(now, source_enclosure, 0, 1, IOType.READ, item_id)
        self._emit_physical(now, target_enclosure, 0, 1, IOType.WRITE, item_id)
        self.migrated_bytes += size_bytes
        self.migration_count += 1
        return max(read.completion, write.completion)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def finish(self, now: float) -> float:
        """Flush outstanding dirty data and settle all enclosures."""
        completion = self.flush_write_delay(now)
        for enclosure in self.virtualization.enclosures():
            enclosure.finish(max(now, completion))
        return completion

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of logical I/Os absorbed by the cache."""
        if self.logical_io_count == 0:
            return 0.0
        return self.cache_hit_count / self.logical_io_count
