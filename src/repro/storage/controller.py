"""Storage controller: routes logical I/O through cache to enclosures.

The controller is the RAID-controller analogue of the paper's testbed
(Fig 5): it owns the battery-backed :class:`~repro.storage.cache.StorageCache`,
consults the :class:`~repro.storage.virtualization.BlockVirtualization`
mapping, and issues physical I/O to :class:`~repro.storage.enclosure.DiskEnclosure`
objects.  It also exposes the three power-saving primitives the runtime
method drives (paper §V): item migration, preload, and write-delay
control — each of which generates *real* physical I/O in the simulation,
so their energy and response-time costs are charged, exactly as the
paper's measurements include them (§VII-A.4).

Physical I/O is reported to an optional tap (the Storage Monitor
subscribes there) as :class:`~repro.trace.records.PhysicalIORecord`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro import units
from repro.units import Bytes, Rate, Seconds
from repro.errors import (
    CapacityError,
    EnclosureUnavailableError,
    MappingError,
    MigrationAbortedError,
    SpinUpFailedError,
    ValidationError,
)
from repro.storage import cache as cache_mod
from repro.storage.cache import StorageCache
from repro.storage.enclosure import DiskEnclosure, IOResult
from repro.storage.virtualization import BlockVirtualization
from repro.trace.records import IOType, LogicalIORecord, PhysicalIORecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.clock import FaultClock

#: Latency of an I/O served entirely from the controller cache.
CACHE_HIT_LATENCY = 0.0002

#: Transfer unit used to count physical I/Os of bulk operations.
BULK_IO_UNIT = units.MB

#: Sustained per-enclosure bandwidth for bulk sequential transfers
#: (preload bursts and write-delay flushes).
BULK_BANDWIDTH_BPS = 150.0 * units.MB

#: Migration copies run in chunks of this size so application I/O only
#: ever queues behind one chunk (~0.4 s), not behind a whole data item.
MIGRATION_CHUNK_BYTES = 64 * units.MB


PhysicalTap = Callable[[PhysicalIORecord], None]

#: Scalar variant of the physical tap used on the batched hot path:
#: ``(timestamp, enclosure name, block, count, io_type, item_id)``.  A
#: subscriber that installs one receives plain fields and decides for
#: itself whether a :class:`PhysicalIORecord` needs to exist.
PhysicalTapFast = Callable[[float, str, int, int, IOType, "str | None"], None]


class StorageController:
    """The storage unit's controller: cache + routing + power primitives."""

    def __init__(
        self,
        virtualization: BlockVirtualization,
        cache: StorageCache,
        migration_throughput_bps: Rate = 60.0 * units.MB,
        bulk_bandwidth_bps: Rate = BULK_BANDWIDTH_BPS,
        physical_tap: PhysicalTap | None = None,
        retry_backoff_base: Seconds = 1.0,
        retry_backoff_cap: Seconds = 64.0,
    ) -> None:
        if migration_throughput_bps <= 0:
            raise ValidationError("migration throughput must be positive")
        if bulk_bandwidth_bps <= 0:
            raise ValidationError("bulk bandwidth must be positive")
        if retry_backoff_base <= 0 or retry_backoff_cap < retry_backoff_base:
            raise ValidationError(
                "retry backoff requires 0 < base <= cap, got "
                f"base={retry_backoff_base!r}, cap={retry_backoff_cap!r}"
            )
        self.virtualization = virtualization
        self.cache = cache
        self.migration_throughput_bps = migration_throughput_bps
        self.bulk_bandwidth_bps = bulk_bandwidth_bps
        self._physical_tap = physical_tap
        self._physical_tap_fast: PhysicalTapFast | None = None
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap

        self.logical_io_count = 0
        self.cache_hit_count = 0
        self.migrated_bytes: Bytes = 0
        self.migration_count = 0
        self.preloaded_bytes: Bytes = 0
        self.flushed_bytes: Bytes = 0

        # Tier lifecycle books (:mod:`repro.storage.tiers`).  All of this
        # is inert — one attribute load and a None/emptiness check on the
        # hot path — until :meth:`enable_tier_tracking` arms it, so
        # legacy single-tier replays execute unchanged float operations.
        self.promotion_count = 0
        self.demotion_count = 0
        self.archive_move_count = 0
        self.replication_count = 0
        self.replicated_bytes: Bytes = 0
        #: Devices of the archive tier; service routed to one of these
        #: records the item in :attr:`archive_serviced_items`.
        self._archive_devices: frozenset[str] = frozenset()
        #: Items whose primary copy was serviced while on an archive
        #: device — the auditor requires a promote record for each.
        self.archive_serviced_items: set[str] = set()
        #: Per-device latency books (service seconds / served I/Os) for
        #: the per-tier report; ``None`` until tier tracking is enabled.
        self._device_service_seconds: dict[str, float] | None = None
        self._device_service_ios: dict[str, int] = {}

        # Fault handling (:mod:`repro.faults`).  All of this is inert —
        # strictly zero-cost on the hot path — until a fault clock is
        # attached, so zero-fault runs take the pre-fault code paths.
        self._fault_clock: FaultClock | None = None
        self._battery_failed = False
        #: Items we selected into write delay as an emergency buffer
        #: because their home enclosure was inside an outage window.
        self._emergency_items: set[str] = set()
        #: The policy's own most recent write-delay selection, so a
        #: drained emergency item is only deselected when the policy
        #: does not also want it.
        self._policy_selected: set[str] = set()
        self.fault_denied_ios = 0
        self.fault_delayed_ios = 0
        self.fault_spin_up_retries = 0
        self.fault_delay_seconds: Seconds = 0.0
        self.fault_max_queue_delay = 0.0
        self.emergency_buffered_ios = 0
        self.emergency_flushes = 0
        self.migration_aborts = 0
        self._at_risk_last_time: Seconds | None = None
        self._at_risk_last_bytes: Bytes = 0
        self.at_risk_peak_bytes: Bytes = 0
        self.at_risk_byte_seconds = 0.0
        self.at_risk_samples: list[tuple[float, int]] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def set_physical_tap(self, tap: PhysicalTap | None) -> None:
        """Attach the storage monitor's physical-trace listener.

        Installing a record-level tap clears any scalar fast tap so a
        custom listener observes every physical I/O as a record, exactly
        as before the batched path existed.
        """
        self._physical_tap = tap
        self._physical_tap_fast = None

    def set_physical_tap_fast(self, tap: PhysicalTapFast | None) -> None:
        """Attach a scalar physical-I/O listener for the batched path.

        Takes precedence over the record tap: when set, physical I/O is
        reported as plain fields and no :class:`PhysicalIORecord` is
        constructed here — the subscriber materializes one only if it
        actually stores full traces.
        """
        self._physical_tap_fast = tap

    def set_fault_clock(self, clock: "FaultClock") -> None:
        """Attach the simulation's fault oracle (:mod:`repro.faults`)."""
        self._fault_clock = clock

    def enable_tier_tracking(self, archive_devices: frozenset[str]) -> None:
        """Arm per-device latency books and archive-service tracking.

        Called by the tiered context builder; legacy single-tier
        contexts never call it, which keeps the application I/O path
        free of tier bookkeeping.
        """
        self._archive_devices = archive_devices
        self._device_service_seconds = {
            name: 0.0 for name in self.virtualization.enclosure_names
        }
        self._device_service_ios = {
            name: 0 for name in self.virtualization.enclosure_names
        }

    @property
    def tier_tracking_enabled(self) -> bool:
        """Whether per-device latency/archive-service books are armed."""
        return self._device_service_seconds is not None

    def device_service_seconds(self, device: str) -> float:
        """Accumulated application service seconds on one device."""
        if self._device_service_seconds is None:
            return 0.0
        return self._device_service_seconds.get(device, 0.0)

    def device_service_ios(self, device: str) -> int:
        """Application I/Os served physically by one device."""
        return self._device_service_ios.get(device, 0)

    def _note_tier_service(
        self, device: str, item_id: str, response: float
    ) -> None:
        """Accrue one served I/O into the armed tier books."""
        self._device_service_seconds[device] += response
        self._device_service_ios[device] += 1
        if device in self._archive_devices:
            self.archive_serviced_items.add(item_id)

    @property
    def battery_failed(self) -> bool:
        """Whether the cache battery has failed (seen by the auditor)."""
        return self._battery_failed

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def on_time(self, now: Seconds) -> None:
        """Advance fault bookkeeping to ``now`` (no-op without faults).

        Driven from exactly two places: internally on every application
        I/O, and by the simulation kernel's
        :class:`~repro.engine.events.FaultBookkeepingEvent` fired just
        before each policy checkpoint — so battery failures are noticed
        and emergency buffers drained at deterministic points of virtual
        time.  Calling it ad hoc elsewhere is flagged by lint rule R8.
        """
        if self._fault_clock is None:
            return
        self._check_battery(now)
        self._drain_emergency(now)
        self._note_at_risk(now)

    def _check_battery(self, now: Seconds) -> None:
        """React to a scheduled cache-battery failure.

        The instant the failure is noticed, every acknowledged write in
        the write-delay buffer is force-flushed — spinning enclosures up
        even at energy cost — and write delay stays disabled for the
        rest of the run, so no acknowledged write is ever lost.
        """
        if self._battery_failed:
            return
        failure_time = self._fault_clock.battery_failure_time
        if failure_time is None or now < failure_time:
            return
        self._battery_failed = True
        wd = self.cache.write_delay
        self._note_at_risk(min(failure_time, now))
        had_dirty = wd.dirty_pages > 0
        completion = self.flush_write_delay(now)
        if had_dirty:
            self.emergency_flushes += 1
        for item_id in list(wd.selected_items()):
            wd.deselect(item_id)
        self._emergency_items.clear()
        self._policy_selected = set()
        self._note_at_risk(max(now, completion))

    def _drain_emergency(self, now: Seconds) -> None:
        """Flush emergency-buffered items whose outage has ended."""
        for item_id in sorted(self._emergency_items):
            enclosure = self.virtualization.enclosure_of(item_id)
            if self._fault_clock.outage_at(enclosure.name, now) is not None:
                continue
            self._emergency_items.discard(item_id)
            if item_id in self._policy_selected:
                # The policy also selected this item; its dirty pages
                # keep draining through the normal write-delay flushes.
                continue
            plan = self.cache.write_delay.deselect(item_id)
            if plan.dirty_bytes_by_item:
                self._execute_flush(now, plan.dirty_bytes_by_item)
                self.emergency_flushes += 1

    def _note_at_risk(self, now: Seconds) -> None:
        """Integrate at-risk dirty bytes (acknowledged, battery gone)."""
        if not self._battery_failed:
            return
        bytes_now = self.cache.write_delay.dirty_pages * cache_mod.PAGE_BYTES
        if self._at_risk_last_time is None:
            self._at_risk_last_time = now
        elif now > self._at_risk_last_time:
            self.at_risk_byte_seconds += self._at_risk_last_bytes * (
                now - self._at_risk_last_time
            )
            self._at_risk_last_time = now
        self._at_risk_last_bytes = bytes_now
        self.at_risk_peak_bytes = max(self.at_risk_peak_bytes, bytes_now)
        if not self.at_risk_samples or self.at_risk_samples[-1][1] != bytes_now:
            self.at_risk_samples.append((now, bytes_now))

    def _with_fault_retry(
        self,
        now: float,
        attempt: Callable[[float], IOResult],
    ) -> tuple[IOResult, float]:
        """Run one physical operation, retrying across injected faults.

        Outage refusals are waited out (retry at the window's end);
        failed spin-ups retry under capped exponential backoff — all in
        virtual time, so the schedule is deterministic.  Both fault
        types are finite by construction (outage windows end, failure
        streaks break), so the loop terminates.  Returns the result
        plus the fault-imposed delay before the successful attempt.
        """
        at = now
        retries = 0
        denied = False
        while True:
            try:
                result = attempt(at)
            except EnclosureUnavailableError as err:
                denied = True
                at = max(at, err.until)
                continue
            except SpinUpFailedError as err:
                self.fault_spin_up_retries += 1
                backoff = min(
                    self.retry_backoff_cap,
                    self.retry_backoff_base * (2.0**retries),
                )
                retries += 1
                at = max(at, err.at) + backoff
                continue
            break
        if denied:
            self.fault_denied_ios += 1
        delay = at - now
        if delay > 0:
            self.fault_delayed_ios += 1
            self.fault_delay_seconds += delay
            self.fault_max_queue_delay = max(self.fault_max_queue_delay, delay)
        return result, delay

    def _emit_physical(
        self,
        timestamp: float,
        enclosure: str,
        block: int,
        count: int,
        io_type: IOType,
        item_id: str | None,
    ) -> None:
        if self._physical_tap_fast is not None:
            self._physical_tap_fast(
                timestamp, enclosure, block, count, io_type, item_id
            )
            return
        if self._physical_tap is None:
            return
        self._physical_tap(
            PhysicalIORecord(
                timestamp=timestamp,
                enclosure=enclosure,
                block_address=block,
                count=count,
                io_type=io_type,
                item_id=item_id,
            )
        )

    def _physical_io(
        self,
        now: float,
        item_id: str,
        offset: int,
        io_type: IOType,
        sequential: bool,
    ) -> float:
        """Issue one physical I/O; returns the mean response time seen by
        the application, including any fault-imposed retry delay."""
        enclosure_name, block = self.virtualization.resolve(item_id, offset)
        enclosure = self.virtualization.enclosure(enclosure_name)
        result, delay = self._with_fault_retry(
            now,
            lambda at: enclosure.submit(
                at, count=1, read=io_type.is_read, sequential=sequential
            ),
        )
        issued = now + delay
        self._emit_physical(issued, enclosure_name, block, 1, io_type, item_id)
        response = result.mean_response_time + delay
        if self._device_service_seconds is not None:
            self._note_tier_service(enclosure_name, item_id, response)
        return response

    def _bulk_transfer(
        self,
        now: float,
        enclosure: DiskEnclosure,
        size_bytes: int,
        io_type: IOType,
        item_id: str | None,
        bandwidth_bps: float,
    ) -> IOResult:
        seconds = size_bytes / bandwidth_bps
        count = max(1, size_bytes // BULK_IO_UNIT)
        result, delay = self._with_fault_retry(
            now,
            lambda at: enclosure.occupy(
                at, seconds, count=count, read=io_type.is_read
            ),
        )
        base_block = 0
        if item_id is not None and self.virtualization.has_item(item_id):
            base_block = self.virtualization.extent_of(item_id).base_block
        self._emit_physical(
            now + delay, enclosure.name, base_block, count, io_type, item_id
        )
        return result

    # ------------------------------------------------------------------
    # application I/O path
    # ------------------------------------------------------------------
    def submit(self, record: LogicalIORecord) -> Seconds:
        """Serve one application I/O; returns its response time in seconds.

        Reads are served from cache when possible (preloaded items always
        hit; otherwise the LRU decides).  Writes to write-delay-selected
        items are absorbed into the cache — triggering a bulk flush when
        the dirty-block rate is reached — while all other writes go to the
        enclosure.  The battery-backed cache makes absorbed writes durable,
        so their response is the cache latency (paper §II-E.2).

        Fault-free runs take :meth:`submit_fast` (same decisions, scalar
        arguments); fault injection keeps the record-level slow path.
        """
        if self._fault_clock is None:
            return self.submit_fast(
                record.timestamp,
                record.item_id,
                record.offset,
                record.size,
                record.io_type is IOType.READ,
                record.sequential,
            )
        return self._submit_slow(record)

    def submit_fast(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
    ) -> Seconds:
        """Serve one application I/O given as plain fields.

        The batched replay pump's entry point: no
        :class:`~repro.trace.records.LogicalIORecord` is required.  The
        decisions and arithmetic mirror :meth:`submit` operation for
        operation (the golden bit-identity test holds both to the same
        timeline); with a fault clock attached the call materializes a
        record and defers to the slow path.
        """
        if self._fault_clock is not None:
            return self._submit_slow(
                LogicalIORecord(
                    timestamp=timestamp,
                    item_id=item_id,
                    offset=offset,
                    size=size,
                    io_type=IOType.READ if is_read else IOType.WRITE,
                    sequential=sequential,
                )
            )
        self.logical_io_count += 1
        virtualization = self.virtualization
        if not virtualization.has_item(item_id):
            raise MappingError(f"I/O to unplaced data item {item_id!r}")
        cache = self.cache
        first_page = offset // cache_mod.PAGE_BYTES
        last_page = (offset + size - 1) // cache_mod.PAGE_BYTES

        if is_read:
            # Evaluate every page (no short-circuit) so each one enters
            # the LRU; the I/O is a hit only if all of them already were.
            all_hit = True
            for page in range(first_page, last_page + 1):
                if not cache.read_hit(item_id, page):
                    all_hit = False
            if all_hit:
                self.cache_hit_count += 1
                return CACHE_HIT_LATENCY
            io_type = IOType.READ
        else:
            if cache.write_delay.is_selected(item_id):
                self.cache_hit_count += 1
                needs_flush = False
                for page in range(first_page, last_page + 1):
                    if cache.write_delay.absorb_write(item_id, page):
                        needs_flush = True
                if needs_flush:
                    self.flush_write_delay(timestamp)
                return CACHE_HIT_LATENCY
            io_type = IOType.WRITE

        # Fault-free single physical I/O via the cached route, with the
        # tap dispatch of :meth:`_emit_physical` unrolled — this is the
        # hottest call chain of the whole replay, so every frame counts.
        enclosure, name, base_block, item_size = virtualization.route(item_id)
        if offset < 0 or offset >= item_size:
            raise MappingError(
                f"offset {offset} outside item {item_id!r} of size {item_size}"
            )
        response = enclosure.submit_one(timestamp, is_read, sequential)
        tap_fast = self._physical_tap_fast
        if tap_fast is not None:
            tap_fast(
                timestamp,
                name,
                base_block + offset // units.BLOCK_SIZE,
                1,
                io_type,
                item_id,
            )
        elif self._physical_tap is not None:
            self._emit_physical(
                timestamp,
                name,
                base_block + offset // units.BLOCK_SIZE,
                1,
                io_type,
                item_id,
            )
        if self._device_service_seconds is not None:
            self._note_tier_service(name, item_id, response)
        return response

    def _submit_slow(self, record: LogicalIORecord) -> Seconds:
        """Record-level I/O path; the only one fault injection takes."""
        self.logical_io_count += 1
        self.on_time(record.timestamp)
        item_id = record.item_id
        if not self.virtualization.has_item(item_id):
            raise MappingError(f"I/O to unplaced data item {item_id!r}")

        if record.is_read:
            # Evaluate every page (no short-circuit) so each one enters
            # the LRU; the I/O is a hit only if all of them already were.
            hits = [
                self.cache.read_hit(item_id, page)
                for page in record.page_range(cache_mod.PAGE_BYTES)
            ]
            if all(hits):
                self.cache_hit_count += 1
                return CACHE_HIT_LATENCY
            return self._physical_io(
                record.timestamp,
                item_id,
                record.offset,
                IOType.READ,
                record.sequential,
            )

        if self.cache.write_delay.is_selected(item_id):
            self.cache_hit_count += 1
            needs_flush = False
            for page in record.page_range(cache_mod.PAGE_BYTES):
                if self.cache.write_delay.absorb_write(item_id, page):
                    needs_flush = True
            if needs_flush:
                self.flush_write_delay(record.timestamp)
            return CACHE_HIT_LATENCY

        if self._fault_clock is not None:
            buffered = self._emergency_buffer_write(record)
            if buffered is not None:
                return buffered

        return self._physical_io(
            record.timestamp,
            item_id,
            record.offset,
            IOType.WRITE,
            record.sequential,
        )

    def _emergency_buffer_write(self, record: LogicalIORecord) -> Seconds | None:
        """Absorb a write whose home enclosure is out into the cache.

        While an enclosure is inside an injected outage window, the
        battery-backed write-delay partition doubles as an emergency
        buffer: the write is acknowledged at cache latency and its dirty
        pages drain once the outage ends.  Returns ``None`` when the
        buffer cannot be used (battery gone, no outage, partition full)
        and the write must take the physical path instead.
        """
        if self._battery_failed:
            return None
        enclosure = self.virtualization.enclosure_of(record.item_id)
        if self._fault_clock.outage_at(enclosure.name, record.timestamp) is None:
            return None
        wd = self.cache.write_delay
        pages = list(record.page_range(cache_mod.PAGE_BYTES))
        if wd.dirty_pages + len(pages) > wd.capacity_pages:
            return None
        wd.select(record.item_id)
        self._emergency_items.add(record.item_id)
        for page in pages:
            wd.absorb_write(record.item_id, page)
        self.cache_hit_count += 1
        self.emergency_buffered_ios += 1
        return CACHE_HIT_LATENCY

    # ------------------------------------------------------------------
    # power-saving primitives (paper §V)
    # ------------------------------------------------------------------
    def preload_item(self, now: Seconds, item_id: str) -> Seconds:
        """Load a whole data item into the preload partition.

        Issues a sequential read burst on the item's enclosure (the
        physical cost of preloading, included in the paper's power
        measurements).  Returns the completion time.  No-op for items
        already pinned.
        """
        if self.cache.preload.is_pinned(item_id):
            return now
        size = self.virtualization.item_size(item_id)
        self.cache.preload.pin(item_id, size)
        enclosure = self.virtualization.enclosure_of(item_id)
        result = self._bulk_transfer(
            now, enclosure, size, IOType.READ, item_id, self.bulk_bandwidth_bps
        )
        self.preloaded_bytes += size
        return result.completion

    def unpin_item(self, item_id: str) -> None:
        """Evict a data item from the preload partition (paper §V-C)."""
        self.cache.preload.unpin(item_id)

    def select_write_delay(self, now: Seconds, item_ids: set[str]) -> Seconds:
        """Reconfigure the write-delay item set; flushes deselected items.

        Returns the time at which all deselection flushes complete.
        With the cache battery failed nothing may be selected (there is
        no safe place to delay writes), so the selection empties.
        """
        self.on_time(now)
        if self._battery_failed:
            item_ids = set()
        self._policy_selected = set(item_ids)
        completion = now
        for stale in sorted(self.cache.write_delay.selected_items() - item_ids):
            if stale in self._emergency_items:
                # Still buffering for an enclosure inside an outage
                # window; _drain_emergency flushes it once the window
                # ends.
                continue
            plan = self.cache.write_delay.deselect(stale)
            completion = max(
                completion, self._execute_flush(now, plan.dirty_bytes_by_item)
            )
        for item_id in sorted(item_ids):
            self.cache.write_delay.select(item_id)
        return completion

    def flush_write_delay(self, now: Seconds) -> Seconds:
        """Bulk-write every dirty block to its enclosure (paper §V-B).

        Under fault injection, items whose home enclosure is inside an
        outage window stay buffered (that is what the emergency buffer
        is for) — unless the battery is gone, in which case nothing may
        linger and the flush waits the outage out via the retry path.
        """
        wd = self.cache.write_delay
        if self._fault_clock is None:
            plan = wd.flush_all()
            return self._execute_flush(now, plan.dirty_bytes_by_item)
        completion = now
        flushed_any = False
        for item_id in list(wd.dirty_items()):
            enclosure = self.virtualization.enclosure_of(item_id)
            if (
                not self._battery_failed
                and self._fault_clock.outage_at(enclosure.name, now) is not None
            ):
                continue
            plan = wd.flush_item(item_id)
            completion = max(
                completion, self._execute_flush(now, plan.dirty_bytes_by_item)
            )
            flushed_any = True
        if flushed_any:
            wd.flush_count += 1
        return completion

    def flush_item(self, now: Seconds, item_id: str) -> Seconds:
        """Write one item's dirty pages out (it stays write-delayed).

        Used before migrating a write-delayed item, so its delayed
        writes land on the old home before the mapping changes.
        """
        plan = self.cache.write_delay.flush_item(item_id)
        return self._execute_flush(now, plan.dirty_bytes_by_item)

    def _execute_flush(self, now: Seconds, dirty_bytes_by_item: dict[str, Bytes]) -> Seconds:
        completion = now
        for item_id, size in dirty_bytes_by_item.items():
            if size <= 0:
                continue
            enclosure = self.virtualization.enclosure_of(item_id)
            result = self._bulk_transfer(
                now, enclosure, size, IOType.WRITE, item_id, self.bulk_bandwidth_bps
            )
            completion = max(completion, result.completion)
            self.flushed_bytes += size
        return completion

    def migrate_item(self, now: Seconds, item_id: str, target_enclosure: str) -> Seconds:
        """Move a data item to another enclosure (paper §V-A).

        The copy is throttled to ``migration_throughput_bps`` "so as to
        not influence the applications' performance"; it occupies the
        source (reads) and the target (writes) and is charged to the
        migrated-data counter the paper reports in Figs 10/13/16.
        Returns the completion time.
        """
        src_name = self.virtualization.enclosure_of(item_id).name
        if src_name == target_enclosure:
            return now
        size = self.virtualization.item_size(item_id)
        src = self.virtualization.enclosure(src_name)
        dst = self.virtualization.enclosure(target_enclosure)
        # Validate capacity before any I/O is charged: a failing move
        # must leave the energy accounting untouched.
        if dst.capacity_bytes and (
            self.virtualization.used_bytes(target_enclosure)
            + self.virtualization.replica_bytes_on(target_enclosure)
            + size
            > dst.capacity_bytes
        ):
            raise CapacityError(
                f"cannot migrate {item_id!r} to {target_enclosure!r}: "
                "insufficient space"
            )
        # Fault injection is consulted before anything is charged or
        # remapped: an aborted move's partial copy is discarded, leaving
        # placement maps, used-bytes and energy books exactly as they
        # were (the MigrationEngine re-plans at the next checkpoint).
        if self._fault_clock is not None:
            if self._fault_clock.migration_abort(item_id, now):
                self.migration_aborts += 1
                raise MigrationAbortedError(item_id, now)
            for name in (src_name, target_enclosure):
                if self._fault_clock.outage_at(name, now) is not None:
                    self.migration_aborts += 1
                    raise MigrationAbortedError(item_id, now)
        # The copy runs in the background at the throttled average rate;
        # its actual platter time is size / bulk bandwidth.  Both
        # enclosures stay awake for the copy's duration and physical
        # records are dropped along it so the interval analysis sees the
        # activity (a migrating enclosure has no Long Interval).
        duration = size / self.migration_throughput_bps
        busy = size / self.bulk_bandwidth_bps
        count = max(1, size // BULK_IO_UNIT)
        src.background_transfer(now, duration, busy, count, read=True)
        dst.background_transfer(now, duration, busy, count, read=False)
        completion = now + duration
        marker = now
        per_marker = max(1, int(count // max(1, duration // 60.0 + 1)))
        while marker < completion:
            self._emit_physical(
                marker, src_name, 0, per_marker, IOType.READ, item_id
            )
            self._emit_physical(
                marker, target_enclosure, 0, per_marker, IOType.WRITE, item_id
            )
            marker += 60.0
        self.virtualization.move_item(item_id, target_enclosure)
        # Cached copies of the moved item remain valid (logical addressing)
        # but the write-delay buffer must target the new enclosure; dirty
        # data was already flushed by the caller before migration.
        self.migrated_bytes += size
        self.migration_count += 1
        return completion

    # ------------------------------------------------------------------
    # tier lifecycle primitives (repro.storage.tiers)
    # ------------------------------------------------------------------
    def promote_item(
        self, now: Seconds, item_id: str, target_enclosure: str
    ) -> Seconds:
        """Move an item's primary copy up to a faster tier's device.

        Physically identical to :meth:`migrate_item` (same throttled
        copy, same fault-abort draws); counted separately so per-tier
        books can distinguish promotions from demotions.  If the item
        was serviced from an archive device, the promotion clears its
        archive-service mark — the auditor has seen the promote record.
        Returns the completion time.
        """
        completion = self.migrate_item(now, item_id, target_enclosure)
        self.promotion_count += 1
        self.archive_serviced_items.discard(item_id)
        return completion

    def demote_item(
        self, now: Seconds, item_id: str, target_enclosure: str
    ) -> Seconds:
        """Move an item's primary copy down to a slower tier's device."""
        completion = self.migrate_item(now, item_id, target_enclosure)
        self.demotion_count += 1
        return completion

    def archive_item(
        self, now: Seconds, item_id: str, target_enclosure: str
    ) -> Seconds:
        """Move an item's primary copy onto an archive-tier device."""
        completion = self.migrate_item(now, item_id, target_enclosure)
        self.archive_move_count += 1
        return completion

    def replicate_item(
        self, now: Seconds, item_id: str, target_enclosure: str
    ) -> Seconds:
        """Copy an item to another tier's device as a replica (§V-A cost).

        The copy is charged exactly like a migration (throttled
        background transfer on source and target, migration-abort and
        outage draws apply), but the primary mapping is untouched: the
        replica occupies capacity on the target and enters the tier
        ledger.  Returns the completion time.
        """
        src_name = self.virtualization.enclosure_of(item_id).name
        if target_enclosure == src_name:
            raise MappingError(
                f"item {item_id!r} already has its primary copy on "
                f"{target_enclosure!r}"
            )
        if target_enclosure in self.virtualization.replicas_of(item_id):
            raise MappingError(
                f"item {item_id!r} already has a replica on "
                f"{target_enclosure!r}"
            )
        size = self.virtualization.item_size(item_id)
        src = self.virtualization.enclosure(src_name)
        dst = self.virtualization.enclosure(target_enclosure)
        occupied = self.virtualization.used_bytes(
            target_enclosure
        ) + self.virtualization.replica_bytes_on(target_enclosure)
        if dst.capacity_bytes and occupied + size > dst.capacity_bytes:
            raise CapacityError(
                f"cannot replicate {item_id!r} to {target_enclosure!r}: "
                "insufficient space"
            )
        if self._fault_clock is not None:
            if self._fault_clock.migration_abort(item_id, now):
                self.migration_aborts += 1
                raise MigrationAbortedError(item_id, now)
            for name in (src_name, target_enclosure):
                if self._fault_clock.outage_at(name, now) is not None:
                    self.migration_aborts += 1
                    raise MigrationAbortedError(item_id, now)
        duration = size / self.migration_throughput_bps
        busy = size / self.bulk_bandwidth_bps
        count = max(1, size // BULK_IO_UNIT)
        src.background_transfer(now, duration, busy, count, read=True)
        dst.background_transfer(now, duration, busy, count, read=False)
        completion = now + duration
        marker = now
        per_marker = max(1, int(count // max(1, duration // 60.0 + 1)))
        while marker < completion:
            self._emit_physical(
                marker, src_name, 0, per_marker, IOType.READ, item_id
            )
            self._emit_physical(
                marker, target_enclosure, 0, per_marker, IOType.WRITE, item_id
            )
            marker += 60.0
        self.virtualization.add_replica(item_id, target_enclosure)
        self.replicated_bytes += size
        self.replication_count += 1
        return completion

    def charge_block_migration(
        self,
        now: float,
        item_id: str,
        size_bytes: int,
        source_enclosure: str,
        target_enclosure: str,
    ) -> float:
        """Charge a block-grained copy between enclosures (DDR's move).

        Unlike :meth:`migrate_item` this does not remap anything — the
        caller is a physical-block-level policy whose remapping sits
        below our item-grained virtualization — but the I/O, the energy,
        and the migrated-byte accounting are identical.  Returns the
        completion time.
        """
        if size_bytes <= 0:
            raise ValidationError("size_bytes must be positive")
        src = self.virtualization.enclosure(source_enclosure)
        dst = self.virtualization.enclosure(target_enclosure)
        seconds = size_bytes / self.bulk_bandwidth_bps
        read, _ = self._with_fault_retry(
            now, lambda at: src.occupy(at, seconds, count=1, read=True)
        )
        write, _ = self._with_fault_retry(
            now, lambda at: dst.occupy(at, seconds, count=1, read=False)
        )
        self._emit_physical(now, source_enclosure, 0, 1, IOType.READ, item_id)
        self._emit_physical(now, target_enclosure, 0, 1, IOType.WRITE, item_id)
        self.migrated_bytes += size_bytes
        self.migration_count += 1
        return max(read.completion, write.completion)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def finish(self, now: Seconds) -> Seconds:
        """Flush outstanding dirty data and settle all enclosures."""
        self.on_time(now)
        completion = self.flush_write_delay(now)
        if self._fault_clock is not None:
            # Dirty data deferred past the end of the run (an outage
            # spanning the finish) must still land before the books
            # close; the bulk-transfer retry waits the outage out.
            wd = self.cache.write_delay
            for item_id in list(wd.dirty_items()):
                plan = wd.flush_item(item_id)
                completion = max(
                    completion,
                    self._execute_flush(now, plan.dirty_bytes_by_item),
                )
                self.emergency_flushes += 1
            self._emergency_items.clear()
            self._note_at_risk(max(now, completion))
        for enclosure in self.virtualization.enclosures():
            enclosure.finish(max(now, completion))
        return completion

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of logical I/Os absorbed by the cache."""
        if self.logical_io_count == 0:
            return 0.0
        return self.cache_hit_count / self.logical_io_count

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable controller books: I/O counters, fault/retry state.

        Construction wiring (virtualization, cache, taps, fault clock,
        throughputs, backoff config) is rebuilt by the resume path and
        deliberately not captured; the cache and virtualization snapshot
        themselves as separate components.
        """
        return {
            "logical_io_count": self.logical_io_count,
            "cache_hit_count": self.cache_hit_count,
            "migrated_bytes": self.migrated_bytes,
            "migration_count": self.migration_count,
            "preloaded_bytes": self.preloaded_bytes,
            "flushed_bytes": self.flushed_bytes,
            "battery_failed": self._battery_failed,
            "emergency_items": sorted(self._emergency_items),
            "policy_selected": sorted(self._policy_selected),
            "fault_denied_ios": self.fault_denied_ios,
            "fault_delayed_ios": self.fault_delayed_ios,
            "fault_spin_up_retries": self.fault_spin_up_retries,
            "fault_delay_seconds": self.fault_delay_seconds,
            "fault_max_queue_delay": self.fault_max_queue_delay,
            "emergency_buffered_ios": self.emergency_buffered_ios,
            "emergency_flushes": self.emergency_flushes,
            "migration_aborts": self.migration_aborts,
            "at_risk_last_time": self._at_risk_last_time,
            "at_risk_last_bytes": self._at_risk_last_bytes,
            "at_risk_peak_bytes": self.at_risk_peak_bytes,
            "at_risk_byte_seconds": self.at_risk_byte_seconds,
            "at_risk_samples": list(self.at_risk_samples),
            "promotion_count": self.promotion_count,
            "demotion_count": self.demotion_count,
            "archive_move_count": self.archive_move_count,
            "replication_count": self.replication_count,
            "replicated_bytes": self.replicated_bytes,
            "archive_serviced_items": sorted(self.archive_serviced_items),
            "device_service_seconds": (
                None
                if self._device_service_seconds is None
                else dict(self._device_service_seconds)
            ),
            "device_service_ios": dict(self._device_service_ios),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the controller books exactly as captured."""
        self.logical_io_count = state["logical_io_count"]
        self.cache_hit_count = state["cache_hit_count"]
        self.migrated_bytes = state["migrated_bytes"]
        self.migration_count = state["migration_count"]
        self.preloaded_bytes = state["preloaded_bytes"]
        self.flushed_bytes = state["flushed_bytes"]
        self._battery_failed = state["battery_failed"]
        self._emergency_items = set(state["emergency_items"])
        self._policy_selected = set(state["policy_selected"])
        self.fault_denied_ios = state["fault_denied_ios"]
        self.fault_delayed_ios = state["fault_delayed_ios"]
        self.fault_spin_up_retries = state["fault_spin_up_retries"]
        self.fault_delay_seconds = state["fault_delay_seconds"]
        self.fault_max_queue_delay = state["fault_max_queue_delay"]
        self.emergency_buffered_ios = state["emergency_buffered_ios"]
        self.emergency_flushes = state["emergency_flushes"]
        self.migration_aborts = state["migration_aborts"]
        self._at_risk_last_time = state["at_risk_last_time"]
        self._at_risk_last_bytes = state["at_risk_last_bytes"]
        self.at_risk_peak_bytes = state["at_risk_peak_bytes"]
        self.at_risk_byte_seconds = state["at_risk_byte_seconds"]
        self.at_risk_samples = list(state["at_risk_samples"])
        self.promotion_count = state.get("promotion_count", 0)
        self.demotion_count = state.get("demotion_count", 0)
        self.archive_move_count = state.get("archive_move_count", 0)
        self.replication_count = state.get("replication_count", 0)
        self.replicated_bytes = state.get("replicated_bytes", 0)
        self.archive_serviced_items = set(
            state.get("archive_serviced_items", ())
        )
        service_seconds = state.get("device_service_seconds")
        self._device_service_seconds = (
            None if service_seconds is None else dict(service_seconds)
        )
        self._device_service_ios = dict(state.get("device_service_ios", {}))
