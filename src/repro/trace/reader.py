"""Trace readers: parse CSV traces and the MSR-Cambridge trace format.

:func:`read_logical_trace` / :func:`read_physical_trace` parse the CSV
format produced by :mod:`repro.trace.writer`.  :func:`read_msr_trace`
parses the SNIA MSR-Cambridge block-trace format the paper's File Server
workload comes from [13]: ``timestamp,hostname,disknum,type,offset,size,
responsetime`` with timestamps in Windows 100-ns ticks; each
``hostname.disknum`` pair becomes one data item, matching the paper's
"a unit of data may be a file" granularity at volume level.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Iterator, TextIO, TypeVar

from repro.errors import TraceError
from repro.trace.records import IOType, LogicalIORecord, PhysicalIORecord
from repro.trace.writer import LOGICAL_HEADER, PHYSICAL_HEADER

#: Windows FILETIME ticks per second (100 ns resolution).
_MSR_TICKS_PER_SECOND = 10_000_000

_RecordT = TypeVar("_RecordT", LogicalIORecord, PhysicalIORecord)


def read_logical_trace(source: str | Path | TextIO) -> list[LogicalIORecord]:
    """Read a logical CSV trace into a list (validates the header)."""
    return list(iter_logical_trace(source))


def iter_logical_trace(source: str | Path | TextIO) -> Iterator[LogicalIORecord]:
    """Stream logical records from a CSV trace."""
    yield from _iter(source, LOGICAL_HEADER, _parse_logical_row)


def read_physical_trace(source: str | Path | TextIO) -> list[PhysicalIORecord]:
    """Read a physical CSV trace into a list (validates the header)."""
    return list(iter_physical_trace(source))


def iter_physical_trace(source: str | Path | TextIO) -> Iterator[PhysicalIORecord]:
    """Stream physical records from a CSV trace."""
    yield from _iter(source, PHYSICAL_HEADER, _parse_physical_row)


def read_msr_trace(
    source: str | Path | TextIO,
    rebase_time: bool = True,
) -> list[LogicalIORecord]:
    """Parse an MSR-Cambridge format block trace into logical records.

    ``rebase_time`` shifts timestamps so the trace starts at 0, which is
    what the replayer expects.  The base is the **minimum** tick of the
    whole trace, not the first row's: MSR captures are frequently
    written in per-disk chunks rather than global time order, and
    rebasing against the first row silently handed every earlier record
    a negative timestamp (which the replayer then rejects — or worse,
    mis-orders once sorted).  Row order is preserved; callers that need
    time order sort afterwards, as :func:`repro.workloads.from_trace.workload_from_records`
    does.
    """
    parsed: list[tuple[int, str, str, IOType, int, int]] = []
    for line_no, row in _rows(source):
        if len(row) < 6:
            raise TraceError(
                f"MSR trace line {line_no}: expected >= 6 fields, got {len(row)}"
            )
        try:
            parsed.append(
                (
                    int(row[0]),
                    row[1],
                    row[2],
                    IOType.parse(row[3]),
                    int(row[4]),
                    int(row[5]),
                )
            )
        except (ValueError, IndexError) as exc:
            raise TraceError(f"MSR trace line {line_no}: {exc}") from exc
    base = 0
    if rebase_time and parsed:
        base = min(ticks for ticks, *_ in parsed)
    return [
        LogicalIORecord(
            timestamp=(ticks - base) / _MSR_TICKS_PER_SECOND,
            item_id=f"{hostname}.{disknum}",
            offset=offset,
            size=max(size, 1),
            io_type=io_type,
        )
        for ticks, hostname, disknum, io_type, offset, size in parsed
    ]


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------
def _rows(source: str | Path | TextIO) -> Iterator[tuple[int, list[str]]]:
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            yield from enumerate(csv.reader(handle), start=1)
    else:
        yield from enumerate(csv.reader(source), start=1)


def _iter(
    source: str | Path | TextIO,
    header: list[str],
    parse: Callable[[list[str]], _RecordT],
) -> Iterator[_RecordT]:
    rows = _rows(source)
    try:
        _, first = next(rows)
    except StopIteration:
        raise TraceError("empty trace file") from None
    if first != header:
        raise TraceError(f"bad trace header: expected {header}, got {first}")
    for line_no, row in rows:
        if not row:
            continue
        try:
            yield parse(row)
        except (ValueError, IndexError) as exc:
            raise TraceError(f"trace line {line_no}: {exc}") from exc


def _parse_logical_row(row: list[str]) -> LogicalIORecord:
    return LogicalIORecord(
        timestamp=float(row[0]),
        item_id=row[1],
        offset=int(row[2]),
        size=int(row[3]),
        io_type=IOType.parse(row[4]),
        sequential=row[5] == "1",
    )


def _parse_physical_row(row: list[str]) -> PhysicalIORecord:
    return PhysicalIORecord(
        timestamp=float(row[0]),
        enclosure=row[1],
        block_address=int(row[2]),
        count=int(row[3]),
        io_type=IOType.parse(row[4]),
        item_id=row[5] or None,
    )
