"""I/O trace record types.

Two trace levels exist, mirroring the paper's two monitors (§III):

* :class:`LogicalIORecord` — what the **Application Monitor** captures at
  the file/record layer: timestamp, data-item identifier, offset within
  the item, size, and read/write type.
* :class:`PhysicalIORecord` — what the **Storage Monitor** captures at the
  block-virtualization layer: timestamp, disk-enclosure name, block
  address, and type.

Records are immutable and ordered by timestamp so traces sort naturally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro import units


class IOType(enum.Enum):
    """Read or write."""

    READ = "R"
    WRITE = "W"

    @property
    def is_read(self) -> bool:
        """Whether this is the read I/O type."""
        return self is IOType.READ

    @classmethod
    def parse(cls, text: str) -> "IOType":
        """Parse ``'R'``/``'W'`` (case-insensitive, also accepts full words)."""
        normalized = text.strip().upper()
        if normalized in ("R", "READ"):
            return cls.READ
        if normalized in ("W", "WRITE"):
            return cls.WRITE
        raise ValidationError(f"unknown I/O type {text!r}")


@dataclass(frozen=True, order=True, slots=True)
class LogicalIORecord:
    """One application-level I/O (paper §III-A, "Logical I/O Trace").

    ``sequential`` is the application's access-pattern hint (a table scan
    versus a random index probe); the storage controller uses it to select
    the sequential or random service rate.

    Slotted: records are materialized by the million on the replay hot
    path, and ``__slots__`` keeps both construction and attribute access
    cheap (the columnar representation in :mod:`repro.trace.columnar`
    avoids materializing them at all).
    """

    timestamp: float
    item_id: str = field(compare=False)
    offset: int = field(compare=False)
    size: int = field(compare=False)
    io_type: IOType = field(compare=False)
    sequential: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValidationError(f"timestamp must be non-negative: {self.timestamp}")
        if self.offset < 0:
            raise ValidationError(f"offset must be non-negative: {self.offset}")
        if self.size <= 0:
            raise ValidationError(f"size must be positive: {self.size}")

    @property
    def is_read(self) -> bool:
        """Whether this logical record is a read."""
        return self.io_type.is_read

    def block_range(self) -> range:
        """Block indices within the data item touched by this I/O."""
        first = self.offset // units.BLOCK_SIZE
        last = (self.offset + self.size - 1) // units.BLOCK_SIZE
        return range(first, last + 1)

    def page_range(self, page_bytes: int) -> range:
        """Cache-page indices touched by this I/O."""
        if page_bytes <= 0:
            raise ValidationError("page_bytes must be positive")
        first = self.offset // page_bytes
        last = (self.offset + self.size - 1) // page_bytes
        return range(first, last + 1)


@dataclass(frozen=True, order=True, slots=True)
class PhysicalIORecord:
    """One block-level I/O as issued to a disk enclosure (paper §III-B)."""

    timestamp: float
    enclosure: str = field(compare=False)
    block_address: int = field(compare=False)
    count: int = field(compare=False, default=1)
    io_type: IOType = field(compare=False, default=IOType.READ)
    #: The data item this physical I/O serves, when known.  The paper's
    #: power-management component joins logical and physical traces; the
    #: simulator can tag the physical record directly, which the join in
    #: :mod:`repro.monitoring` also verifies.
    item_id: str | None = field(compare=False, default=None)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValidationError(f"timestamp must be non-negative: {self.timestamp}")
        if self.count <= 0:
            raise ValidationError(f"count must be positive: {self.count}")

    @property
    def is_read(self) -> bool:
        """Whether this physical record is a read."""
        return self.io_type.is_read


@dataclass(frozen=True, order=True)
class PowerStatusRecord:
    """A power-state transition of one enclosure (paper §III-B)."""

    timestamp: float
    enclosure: str = field(compare=False)
    powered_on: bool = field(compare=False)


@dataclass(frozen=True, order=True)
class PowerSample:
    """A power-consumption sample of one enclosure (paper §III-B)."""

    timestamp: float
    enclosure: str = field(compare=False)
    watts: float = field(compare=False)
