"""Summary statistics over I/O traces.

Used by the workload generators' self-checks, by the experiment reports,
and by tests that assert a generated trace has the intended shape
(read ratio, per-item rates, sequentiality, duration).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.records import LogicalIORecord


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one logical trace."""

    record_count: int
    read_count: int
    write_count: int
    start_time: float
    end_time: float
    total_bytes: int
    item_count: int
    sequential_count: int
    ios_per_item: dict[str, int] = field(repr=False, default_factory=dict)
    reads_per_item: dict[str, int] = field(repr=False, default_factory=dict)

    @property
    def duration(self) -> float:
        """Trace time span in seconds."""
        return self.end_time - self.start_time

    @property
    def read_ratio(self) -> float:
        """Fraction of records that are reads."""
        return self.read_count / self.record_count if self.record_count else 0.0

    @property
    def sequential_ratio(self) -> float:
        """Fraction of records that continue a sequential run."""
        return (
            self.sequential_count / self.record_count if self.record_count else 0.0
        )

    @property
    def mean_iops(self) -> float:
        """Mean I/O rate over the trace, in operations per second."""
        if self.duration <= 0:
            return 0.0
        return self.record_count / self.duration

    def item_read_ratio(self, item_id: str) -> float:
        """Fraction of the item's I/Os that are reads."""
        total = self.ios_per_item.get(item_id, 0)
        if not total:
            return 0.0
        return self.reads_per_item.get(item_id, 0) / total


def summarize(records: Iterable[LogicalIORecord]) -> TraceSummary:
    """Compute a :class:`TraceSummary` in one pass."""
    count = reads = seq = 0
    total_bytes = 0
    start = float("inf")
    end = float("-inf")
    per_item: Counter[str] = Counter()
    reads_per_item: Counter[str] = Counter()
    for rec in records:
        count += 1
        total_bytes += rec.size
        if rec.is_read:
            reads += 1
            reads_per_item[rec.item_id] += 1
        if rec.sequential:
            seq += 1
        per_item[rec.item_id] += 1
        if rec.timestamp < start:
            start = rec.timestamp
        if rec.timestamp > end:
            end = rec.timestamp
    if count == 0:
        return TraceSummary(0, 0, 0, 0.0, 0.0, 0, 0, 0)
    return TraceSummary(
        record_count=count,
        read_count=reads,
        write_count=count - reads,
        start_time=start,
        end_time=end,
        total_bytes=total_bytes,
        item_count=len(per_item),
        sequential_count=seq,
        ios_per_item=dict(per_item),
        reads_per_item=dict(reads_per_item),
    )


def interarrival_gaps(
    records: Iterable[LogicalIORecord],
) -> dict[str, list[float]]:
    """Per-item inter-arrival gaps (seconds), in trace order.

    The gap list for an item with n I/Os has n-1 entries; boundary gaps
    (before the first and after the last I/O) are the caller's concern
    since only it knows the monitoring window.
    """
    last_seen: dict[str, float] = {}
    gaps: dict[str, list[float]] = defaultdict(list)
    for rec in records:
        prev = last_seen.get(rec.item_id)
        if prev is not None:
            gaps[rec.item_id].append(rec.timestamp - prev)
        last_seen[rec.item_id] = rec.timestamp
    return dict(gaps)
