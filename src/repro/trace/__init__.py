"""Trace subsystem: record types, readers/writers, replay, statistics."""

from repro.trace.columnar import ColumnarTrace
from repro.trace.reader import (
    iter_logical_trace,
    iter_physical_trace,
    read_logical_trace,
    read_msr_trace,
    read_physical_trace,
)
from repro.trace.records import (
    IOType,
    LogicalIORecord,
    PhysicalIORecord,
    PowerSample,
    PowerStatusRecord,
)
from repro.trace.stats import TraceSummary, interarrival_gaps, summarize
from repro.trace.writer import write_logical_trace, write_physical_trace

__all__ = [
    "ColumnarTrace",
    "IOType",
    "LogicalIORecord",
    "PhysicalIORecord",
    "PowerSample",
    "PowerStatusRecord",
    "TraceSummary",
    "interarrival_gaps",
    "iter_logical_trace",
    "iter_physical_trace",
    "read_logical_trace",
    "read_msr_trace",
    "read_physical_trace",
    "summarize",
    "write_logical_trace",
    "write_physical_trace",
]
