"""Trace replayer: drives the storage system from a logical I/O trace.

The btreplay-analogue of the paper's evaluation (§VII-A.2, Fig 7): it
replays timestamped logical I/Os through the storage controller, feeds
the application monitor, and gives the active power policy control at its
checkpoints.  "Our trace replay tool issues I/O for moving data items,
preload data items, and flushing delayed write I/Os" — those side-effect
I/Os happen inside the policy callbacks via the controller, so their
energy and latency costs land in the same accounting as application I/O.

Since the :mod:`repro.engine` refactor the replayer is a thin façade:
each :meth:`TraceReplayer.run` builds a single-use
:class:`~repro.engine.kernel.SimulationKernel`, hooks the auditor onto
it, pumps the records through, and assembles the
:class:`ReplayResult` from the context's monitors.  All event ordering
lives in the kernel (and is pinned bit-identical by the golden test in
``tests/trace/test_replay_golden.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.audit import InvariantAuditor
    from repro.monitoring.timeline import PowerTimeline

from repro.baselines.base import PowerPolicy
from repro.engine.kernel import SimulationKernel
from repro.faults.report import AvailabilityReport, availability_from_context
from repro.monitoring.application import ResponseStats
from repro.simulation import SimulationContext
from repro.storage.meter import PowerReading
from repro.trace.records import LogicalIORecord


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one trace under one policy."""

    policy_name: str
    duration_seconds: float
    io_count: int
    response: ResponseStats
    power: PowerReading
    migrated_bytes: int
    migration_count: int
    determinations: int
    cache_hit_ratio: float
    spin_up_count: int
    spin_down_count: int
    #: How injected faults affected service (all-zero without faults,
    #: equal to the default so zero-fault results stay bit-identical
    #: with pre-fault replays).
    availability: AvailabilityReport = AvailabilityReport()

    # Non-field attribute (class-level default, no annotation on
    # purpose — an annotation would make it a dataclass field; set
    # per-instance via object.__setattr__ in TraceReplayer.run): the
    # run's full action log, a tuple of
    # :class:`~repro.actions.records.ActionRecord`.  Kept out of
    # ``asdict``/``==`` — and with them the golden bit-identity test —
    # by design; the experiment serializer carries it explicitly.
    actions = ()

    @property
    def mean_response(self) -> float:
        """Mean response time across all I/Os, in seconds."""
        return self.response.mean_response

    @property
    def mean_read_response(self) -> float:
        """Mean response time of read I/Os, in seconds."""
        return self.response.mean_read_response


class TraceReplayer:
    """Replays a logical trace under a power policy.

    ``timeline`` (optional) is a
    :class:`~repro.monitoring.timeline.PowerTimeline`: when given, the
    replayer samples it as virtual time passes, producing the §III-B
    power-consumption series alongside the run-level averages.

    ``auditor`` (optional) is a
    :class:`~repro.devtools.audit.InvariantAuditor`: when given, it is
    invoked after every policy checkpoint (i.e. once per monitoring
    period) and once at the end of the run, raising
    :class:`~repro.errors.AuditError` if any simulation invariant —
    energy conservation, capacity accounting, monotonic time — breaks.
    """

    def __init__(
        self,
        context: SimulationContext,
        policy: PowerPolicy,
        timeline: "PowerTimeline | None" = None,
        auditor: "InvariantAuditor | None" = None,
    ) -> None:
        self.context = context
        self.policy = policy
        self.timeline = timeline
        self.auditor = auditor
        policy.bind(context)

    def run(
        self,
        records: Sequence[LogicalIORecord] | Iterable[LogicalIORecord],
        duration: float | None = None,
    ) -> ReplayResult:
        """Replay ``records`` (must be time-ordered); returns the result.

        ``duration`` fixes the measurement window end; by default the
        last record's timestamp is used.  The final window is still
        closed properly: pending policy checkpoints up to the end run,
        dirty cache data is flushed, and every enclosure's energy
        timeline is settled to the end.

        Boundary convention: a policy checkpoint scheduled exactly at a
        record's timestamp runs *before* that record is submitted (the
        checkpoint closes the monitoring window ending at that instant;
        the record opens the next one).  Tests pin this ordering — the
        parallel experiment engine depends on every replay, serial or
        not, making the same decision sequence.

        An empty trace replays to a well-defined zero-I/O result when a
        positive ``duration`` is given (idle power over the window).
        Without one there is no measurement window at all, which raises
        :class:`~repro.errors.ReplayError` — as does a non-positive
        declared ``duration``.

        Passing a :class:`~repro.trace.columnar.ColumnarTrace` engages
        the kernel's batched pump — identical results (the golden test
        pins bit-identity), several times the throughput.
        """
        context = self.context
        policy = self.policy
        kernel = SimulationKernel(context, policy, timeline=self.timeline)
        if self.auditor is not None:
            self.auditor.hook(kernel)
        outcome = kernel.replay(records, duration=duration)
        final = outcome.final

        controller = context.controller
        power = context.meter.read(final, controller)
        availability = availability_from_context(context, policy, final)
        result = ReplayResult(
            policy_name=policy.name,
            duration_seconds=final,
            io_count=outcome.io_count,
            response=context.app_monitor.response_stats(),
            power=power,
            migrated_bytes=controller.migrated_bytes,
            migration_count=controller.migration_count,
            determinations=policy.determinations,
            cache_hit_ratio=controller.cache_hit_ratio,
            spin_up_count=sum(e.spin_up_count for e in context.enclosures),
            spin_down_count=sum(e.spin_down_count for e in context.enclosures),
            availability=availability,
        )
        if context.executor is not None:
            object.__setattr__(
                result, "actions", tuple(context.executor.log)
            )
        return result
