"""Trace writers: serialize I/O traces to CSV.

The on-disk format is a plain CSV with a header line, one record per
line.  Logical traces carry
``timestamp,item_id,offset,size,io_type,sequential``; physical traces
carry ``timestamp,enclosure,block_address,count,io_type,item_id``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, TextIO

from repro.trace.records import LogicalIORecord, PhysicalIORecord

LOGICAL_HEADER = ["timestamp", "item_id", "offset", "size", "io_type", "sequential"]
PHYSICAL_HEADER = [
    "timestamp",
    "enclosure",
    "block_address",
    "count",
    "io_type",
    "item_id",
]


def write_logical_trace(
    records: Iterable[LogicalIORecord], destination: str | Path | TextIO
) -> int:
    """Write a logical trace as CSV; returns the record count."""
    return _write(
        destination,
        LOGICAL_HEADER,
        (
            [
                f"{rec.timestamp:.6f}",
                rec.item_id,
                str(rec.offset),
                str(rec.size),
                rec.io_type.value,
                "1" if rec.sequential else "0",
            ]
            for rec in records
        ),
    )


def write_physical_trace(
    records: Iterable[PhysicalIORecord], destination: str | Path | TextIO
) -> int:
    """Write a physical trace as CSV; returns the record count."""
    return _write(
        destination,
        PHYSICAL_HEADER,
        (
            [
                f"{rec.timestamp:.6f}",
                rec.enclosure,
                str(rec.block_address),
                str(rec.count),
                rec.io_type.value,
                rec.item_id or "",
            ]
            for rec in records
        ),
    )


def _write(
    destination: str | Path | TextIO,
    header: list[str],
    rows: Iterable[list[str]],
) -> int:
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            return _write_rows(handle, header, rows)
    return _write_rows(destination, header, rows)


def _write_rows(handle: TextIO, header: list[str], rows: Iterable[list[str]]) -> int:
    writer = csv.writer(handle)
    writer.writerow(header)
    count = 0
    for row in rows:
        writer.writerow(row)
        count += 1
    return count
