"""Columnar logical-trace representation and the ``.ecot`` file format.

The per-record-object hot path caps replay throughput: every
:class:`~repro.trace.records.LogicalIORecord` is a frozen dataclass
whose construction, validation, and attribute access all cost Python
bytecode per I/O.  :class:`ColumnarTrace` stores the same trace as
parallel primitive columns —

* ``timestamps`` — float64 (``array('d')``),
* ``item_index`` — uint32 index into the interned :attr:`items` table,
* ``offsets`` / ``sizes`` — int64 (``array('q')``),
* ``flags`` — one byte per record (:data:`FLAG_READ` | :data:`FLAG_SEQUENTIAL`)

— built once from any record iterable.  The simulation kernel's batch
pump (:meth:`repro.engine.kernel.SimulationKernel.replay`) consumes the
columns directly, and everything that still wants record objects can
iterate the trace (iteration materializes records lazily), so a
``ColumnarTrace`` is a drop-in ``Sequence[LogicalIORecord]``.

``.ecot`` ("EcoStor trace") is the trace's versioned binary form: a
fixed little-endian header, the interned item table, then the raw
column payloads, 8-byte aligned so :meth:`ColumnarTrace.load` can map
the file with :mod:`mmap` and cast zero-copy memoryviews over the
columns.  ``ecostor trace pack`` converts CSV/MSR traces into it; see
``docs/trace-format.md`` for the byte-level layout.
"""

from __future__ import annotations

import mmap as mmap_mod
import struct
from array import array
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Sequence, overload

from repro.errors import TraceError, ValidationError
from repro.trace.records import IOType, LogicalIORecord

__all__ = [
    "ECOT_MAGIC",
    "ECOT_VERSION",
    "FLAG_READ",
    "FLAG_SEQUENTIAL",
    "ColumnarTrace",
]

#: File magic of the ``.ecot`` format (first four bytes).
ECOT_MAGIC = b"ECOT"

#: Current ``.ecot`` format version, written into every header and
#: checked on load — unknown versions are refused, never guessed at.
ECOT_VERSION = 1

#: Flag bit: the record is a read (else a write).
FLAG_READ = 0x01

#: Flag bit: the application marked the access sequential.
FLAG_SEQUENTIAL = 0x02

#: Fixed header: magic, version, record count, item count, header+item
#: table span in bytes (= offset of the first column, 8-byte aligned).
_HEADER = struct.Struct("<4sIQIQ")

#: Length prefix of one interned item id (UTF-8 byte length).
_ITEM_LEN = struct.Struct("<H")

#: Alignment of the column payloads, so memoryview casts over an
#: mmap-ed file start on natural boundaries.
_COLUMN_ALIGN = 8

_TS_CODE = "d"
_INDEX_CODE = "I"
_BYTES_CODE = "q"


def _pad(offset: int) -> int:
    """Bytes of padding needed to align ``offset`` to a column boundary."""
    return (-offset) % _COLUMN_ALIGN


class ColumnarTrace(Sequence[LogicalIORecord]):
    """A logical I/O trace as parallel primitive columns.

    Immutable by convention: the columns are built once (by
    :meth:`from_records` or :meth:`load`) and only read afterwards.
    Indexing and iteration materialize :class:`LogicalIORecord` objects
    on demand, so the trace is usable anywhere a record sequence is —
    but the batch replay pump reads the columns directly and never
    materializes at all.
    """

    __slots__ = (
        "items",
        "timestamps",
        "item_index",
        "offsets",
        "sizes",
        "flags",
    )

    def __init__(
        self,
        items: tuple[str, ...],
        timestamps: "array[float] | memoryview",
        item_index: "array[int] | memoryview",
        offsets: "array[int] | memoryview",
        sizes: "array[int] | memoryview",
        flags: "bytes | memoryview",
    ) -> None:
        n = len(timestamps)
        if not (len(item_index) == len(offsets) == len(sizes) == len(flags) == n):
            raise ValidationError(
                "columnar trace requires equal-length columns, got "
                f"ts={len(timestamps)}, item={len(item_index)}, "
                f"offset={len(offsets)}, size={len(sizes)}, flags={len(flags)}"
            )
        self.items = items
        self.timestamps = timestamps
        self.item_index = item_index
        self.offsets = offsets
        self.sizes = sizes
        self.flags = flags

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[LogicalIORecord]) -> "ColumnarTrace":
        """Build the columns from any record iterable (one pass).

        Item ids are interned in first-appearance order; the record
        order is preserved exactly (the trace need not be time-ordered —
        the replayer validates ordering itself, and readers may want to
        pack raw unsorted captures).
        """
        timestamps = array(_TS_CODE)
        item_index = array(_INDEX_CODE)
        offsets = array(_BYTES_CODE)
        sizes = array(_BYTES_CODE)
        flags = bytearray()
        intern: dict[str, int] = {}
        for record in records:
            index = intern.setdefault(record.item_id, len(intern))
            timestamps.append(record.timestamp)
            item_index.append(index)
            offsets.append(record.offset)
            sizes.append(record.size)
            flag = FLAG_READ if record.io_type is IOType.READ else 0
            if record.sequential:
                flag |= FLAG_SEQUENTIAL
            flags.append(flag)
        return cls(
            items=tuple(intern),
            timestamps=timestamps,
            item_index=item_index,
            offsets=offsets,
            sizes=sizes,
            flags=bytes(flags),
        )

    def to_records(self) -> list[LogicalIORecord]:
        """Materialize the whole trace as record objects (same order)."""
        return list(self)

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.timestamps)

    def _materialize(self, i: int) -> LogicalIORecord:
        flag = self.flags[i]
        return LogicalIORecord(
            timestamp=self.timestamps[i],
            item_id=self.items[self.item_index[i]],
            offset=self.offsets[i],
            size=self.sizes[i],
            io_type=IOType.READ if flag & FLAG_READ else IOType.WRITE,
            sequential=bool(flag & FLAG_SEQUENTIAL),
        )

    @overload
    def __getitem__(self, index: int) -> LogicalIORecord: ...

    @overload
    def __getitem__(self, index: slice) -> "ColumnarTrace": ...

    def __getitem__(
        self, index: "int | slice"
    ) -> "LogicalIORecord | ColumnarTrace":
        if isinstance(index, slice):
            return ColumnarTrace(
                items=self.items,
                timestamps=self.timestamps[index],
                item_index=self.item_index[index],
                offsets=self.offsets[index],
                sizes=self.sizes[index],
                flags=self.flags[index],
            )
        n = len(self.timestamps)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"record index {index} out of range ({n} records)")
        return self._materialize(index)

    def __iter__(self) -> Iterator[LogicalIORecord]:
        for i in range(len(self.timestamps)):
            yield self._materialize(i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        return (
            self.items == other.items
            and list(self.timestamps) == list(other.timestamps)
            and list(self.item_index) == list(other.item_index)
            and list(self.offsets) == list(other.offsets)
            and list(self.sizes) == list(other.sizes)
            and bytes(self.flags) == bytes(other.flags)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity only
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarTrace({len(self)} records, {len(self.items)} items)"
        )

    # ------------------------------------------------------------------
    # analysis adapters
    # ------------------------------------------------------------------
    def profile_arrays(
        self,
    ) -> tuple[Sequence[float], Sequence[str], Sequence[int], Sequence[bool]]:
        """Columns the pattern classifier consumes: (ts, item, size, is_read).

        The item column is materialized as strings (one lookup per
        record); :func:`repro.core.patterns.build_profiles` detects this
        method and takes its columnar branch.
        """
        items = self.items
        item_ids = [items[i] for i in self.item_index]
        reads = [bool(flag & FLAG_READ) for flag in self.flags]
        return self.timestamps, item_ids, self.sizes, reads

    def iter_field_tuples(
        self,
    ) -> Iterator[tuple[float, str, int, int, str, bool]]:
        """Yield ``(ts, item_id, offset, size, io_value, sequential)``.

        Exactly the field values :func:`repro.experiments.parallel.workload_fingerprint`
        feeds per record, so fingerprints computed from the columns are
        byte-identical to fingerprints computed from record objects.
        """
        items = self.items
        read_value = IOType.READ.value
        write_value = IOType.WRITE.value
        for i in range(len(self.timestamps)):
            flag = self.flags[i]
            yield (
                self.timestamps[i],
                items[self.item_index[i]],
                self.offsets[i],
                self.sizes[i],
                read_value if flag & FLAG_READ else write_value,
                bool(flag & FLAG_SEQUENTIAL),
            )

    # ------------------------------------------------------------------
    # .ecot file format
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> int:
        """Write the trace as a version-``1`` ``.ecot`` file.

        Returns the number of records written.  The write is atomic at
        the filesystem level only insofar as it truncates-then-writes;
        callers wanting atomicity should write to a temp file and rename.
        """
        item_table = bytearray()
        for item_id in self.items:
            encoded = item_id.encode("utf-8")
            if len(encoded) > 0xFFFF:
                raise TraceError(
                    f"item id too long for .ecot ({len(encoded)} bytes): "
                    f"{item_id[:40]!r}..."
                )
            item_table += _ITEM_LEN.pack(len(encoded))
            item_table += encoded
        span = _HEADER.size + len(item_table)
        span += _pad(span)
        header = _HEADER.pack(
            ECOT_MAGIC, ECOT_VERSION, len(self), len(self.items), span
        )
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(item_table)
            handle.write(b"\x00" * _pad(_HEADER.size + len(item_table)))
            for column in (self.timestamps, self.item_index, self.offsets, self.sizes):
                data = (
                    column.tobytes()
                    if isinstance(column, (array, memoryview))
                    else bytes(column)
                )
                handle.write(data)
            handle.write(bytes(self.flags))
        return len(self)

    @classmethod
    def load(cls, path: "str | Path", use_mmap: bool = True) -> "ColumnarTrace":
        """Read an ``.ecot`` file back into a columnar trace.

        With ``use_mmap`` (the default) the column payloads are
        zero-copy memoryview casts over a private memory map of the
        file; pass ``use_mmap=False`` to copy them into ``array``
        objects instead (e.g. when the file will be replaced in place).
        """
        with open(path, "rb") as handle:
            head = handle.read(_HEADER.size)
            if len(head) < _HEADER.size:
                raise TraceError(f"{path}: truncated .ecot header")
            magic, version, record_count, item_count, span = _HEADER.unpack(head)
            if magic != ECOT_MAGIC:
                raise TraceError(
                    f"{path}: not an .ecot file (magic {magic!r})"
                )
            if version != ECOT_VERSION:
                raise TraceError(
                    f"{path}: unsupported .ecot version {version} "
                    f"(this build reads version {ECOT_VERSION})"
                )
            items = cls._read_item_table(handle, item_count, path)
            if use_mmap:
                buffer: "mmap_mod.mmap | bytes" = mmap_mod.mmap(
                    handle.fileno(), 0, access=mmap_mod.ACCESS_READ
                )
            else:
                handle.seek(0)
                buffer = handle.read()
        return cls._from_buffer(buffer, items, record_count, span, path)

    @staticmethod
    def _read_item_table(
        handle: BinaryIO, item_count: int, path: "str | Path"
    ) -> tuple[str, ...]:
        items = []
        read = handle.read
        for _ in range(item_count):
            raw_len = read(_ITEM_LEN.size)
            if len(raw_len) < _ITEM_LEN.size:
                raise TraceError(f"{path}: truncated .ecot item table")
            (length,) = _ITEM_LEN.unpack(raw_len)
            encoded = read(length)
            if len(encoded) < length:
                raise TraceError(f"{path}: truncated .ecot item table")
            items.append(encoded.decode("utf-8"))
        return tuple(items)

    @classmethod
    def _from_buffer(
        cls,
        buffer: "mmap_mod.mmap | bytes",
        items: tuple[str, ...],
        record_count: int,
        span: int,
        path: "str | Path",
    ) -> "ColumnarTrace":
        view = memoryview(buffer)
        sizes_of = (
            ("timestamps", _TS_CODE, 8),
            ("item_index", _INDEX_CODE, 4),
            ("offsets", _BYTES_CODE, 8),
            ("sizes", _BYTES_CODE, 8),
            ("flags", "B", 1),
        )
        expected = span + sum(record_count * width for _, _, width in sizes_of)
        if len(view) < expected:
            raise TraceError(
                f"{path}: truncated .ecot columns "
                f"({len(view)} bytes, need {expected})"
            )
        columns: dict[str, memoryview] = {}
        offset = span
        for name, code, width in sizes_of:
            chunk = view[offset : offset + record_count * width]
            columns[name] = chunk.cast(code)
            offset += record_count * width
        if record_count and max(columns["item_index"]) >= len(items):
            raise TraceError(
                f"{path}: item index {max(columns['item_index'])} outside "
                f"the {len(items)}-entry item table"
            )
        return cls(
            items=items,
            timestamps=columns["timestamps"],
            item_index=columns["item_index"],
            offsets=columns["offsets"],
            sizes=columns["sizes"],
            flags=columns["flags"],
        )
