"""Simulation context: the wired-together storage system under test.

A :class:`SimulationContext` bundles everything one experiment run needs
— configuration, enclosures, virtualization, cache, controller, monitors,
migration engine — and :func:`build_context` assembles it the way the
paper's testbed is assembled (Fig 5 / Fig 7): one controller over N
enclosures, the storage monitor tapping physical I/O, the application
monitor fed by the replayer.

The context holds no notion of time itself: virtual time lives in the
:mod:`repro.engine` kernel, which drives every component here through
events (records, checkpoints, timeline samples, fault bookkeeping) and
settles them at end of run.  One context backs one measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.actions.executor import ActionExecutor
from repro.errors import ValidationError
from repro.config import EcoStorConfig
from repro.faults.clock import FaultClock
from repro.faults.plan import FaultPlan
from repro.monitoring.application import ApplicationMonitor
from repro.monitoring.storage import StorageMonitor
from repro.storage.cache import StorageCache
from repro.storage.controller import StorageController
from repro.storage.enclosure import DiskEnclosure
from repro.storage.meter import PowerMeter
from repro.storage.migration import MigrationEngine
from repro.storage.tiers import (
    ARCHIVE_COST_PER_BYTE,
    FLASH_COST_PER_BYTE,
    HDD_COST_PER_BYTE,
    ArchiveTier,
    FlashTier,
    StorageTier,
    TierKind,
)
from repro.storage.virtualization import BlockVirtualization


@dataclass
class SimulationContext:
    """Everything a power policy and the replayer need to run."""

    config: EcoStorConfig
    virtualization: BlockVirtualization
    cache: StorageCache
    controller: StorageController
    app_monitor: ApplicationMonitor
    storage_monitor: StorageMonitor
    migration_engine: MigrationEngine
    meter: PowerMeter
    #: Fault oracle (:mod:`repro.faults`); ``None`` for zero-fault runs,
    #: in which case the storage layer takes its pre-fault code paths.
    fault_clock: FaultClock | None = None
    #: The single mutation path into the storage layer
    #: (:mod:`repro.actions`); built in ``__post_init__`` when not given.
    executor: ActionExecutor | None = None
    #: Which fleet array this context simulates (:mod:`repro.fleet`);
    #: ``None`` for standalone single-array runs.  When set, every
    #: enclosure (and therefore every default volume) name carries the
    #: ``"{array_id}:"`` prefix, so N array kernels can coexist in one
    #: fleet run without any component name colliding in the global
    #: books (action logs, fault plans, reports).
    array_id: str | None = None

    def __post_init__(self) -> None:
        if self.executor is None:
            self.executor = ActionExecutor(
                self.controller, self.config, self.fault_clock
            )
        # The migration engine must apply plans through the context
        # executor so its migrations land in the shared action log.
        self.migration_engine.executor = self.executor

    def require_executor(self) -> ActionExecutor:
        """The context's action executor (always set after init)."""
        if self.executor is None:  # pragma: no cover - post_init guarantees
            raise ValidationError("simulation context has no action executor")
        return self.executor

    @property
    def enclosures(self) -> list[DiskEnclosure]:
        """All disk enclosures in the simulated array."""
        return self.virtualization.enclosures()

    def enclosure_names(self) -> list[str]:
        """Names of all enclosures in the simulated array."""
        return self.virtualization.enclosure_names


def build_context(
    config: EcoStorConfig,
    enclosure_count: int,
    enclosure_prefix: str = "enc",
    faults: FaultPlan | None = None,
    array_id: str | None = None,
) -> SimulationContext:
    """Assemble a fresh storage system with ``enclosure_count`` enclosures.

    Every enclosure gets one default volume named after it, so callers can
    place items immediately; workload builders may create more volumes
    (Table I's File Server creates 36 across 12 enclosures).

    ``faults`` installs a :class:`~repro.faults.clock.FaultClock` wired
    into every enclosure and the controller.  A ``None`` or empty plan
    installs nothing at all, so zero-fault runs execute the exact
    pre-fault code paths (bit-identical results).

    ``array_id`` namespaces the array for fleet runs (:mod:`repro.fleet`):
    enclosures become ``"{array_id}:{enclosure_prefix}-NN"`` and the
    default volumes follow.  ``None`` keeps the legacy unprefixed names,
    so standalone runs (and 1-array fleets) stay bit-identical to the
    golden replay results.
    """
    if enclosure_count <= 0:
        raise ValidationError("enclosure_count must be positive")
    name_prefix = f"{array_id}:" if array_id is not None else ""
    enclosures = [
        DiskEnclosure(
            name=f"{name_prefix}{enclosure_prefix}-{i:02d}",
            power_model=config.enclosure_power,
            iops_random=config.service_iops_random,
            iops_sequential=config.service_iops_sequential,
            capacity_bytes=config.enclosure_size_bytes,
            spin_down_timeout=config.spin_down_timeout,
        )
        for i in range(enclosure_count)
    ]
    virtualization = BlockVirtualization(enclosures)
    for enclosure in enclosures:
        virtualization.create_volume(f"vol/{enclosure.name}", enclosure.name)
    cache = StorageCache(
        total_bytes=config.storage_cache_bytes,
        preload_bytes=config.preload_cache_bytes,
        write_delay_bytes=config.write_delay_cache_bytes,
        dirty_block_rate=config.dirty_block_rate,
    )
    storage_monitor = StorageMonitor(enclosures)
    controller = StorageController(
        virtualization,
        cache,
        migration_throughput_bps=config.migration_throughput_bps,
        physical_tap=storage_monitor.on_physical,
        retry_backoff_base=config.fault_backoff_base,
        retry_backoff_cap=config.fault_backoff_cap,
    )
    # The storage monitor understands scalar taps, so the hot path never
    # materializes PhysicalIORecord objects unless a repository stores
    # them; the record tap above stays as the fallback for custom taps.
    controller.set_physical_tap_fast(storage_monitor.on_physical_fast)
    fault_clock: FaultClock | None = None
    if faults is not None and faults:
        fault_clock = FaultClock(faults)
        for enclosure in enclosures:
            enclosure.set_fault_clock(fault_clock)
        controller.set_fault_clock(fault_clock)
    return SimulationContext(
        config=config,
        virtualization=virtualization,
        cache=cache,
        controller=controller,
        app_monitor=ApplicationMonitor(),
        storage_monitor=storage_monitor,
        migration_engine=MigrationEngine(controller),
        meter=PowerMeter(enclosures, config.controller_power),
        fault_clock=fault_clock,
        array_id=array_id,
    )


def build_tiered_context(
    config: EcoStorConfig,
    hdd_count: int,
    flash_count: int = 1,
    archive_count: int = 1,
    enclosure_prefix: str = "enc",
    faults: FaultPlan | None = None,
    array_id: str | None = None,
) -> SimulationContext:
    """Assemble a multi-tier storage system: flash + HDD + archive.

    The HDD devices keep the ``build_context`` naming scheme
    (``enc-NN``) *and* come first in the enclosure order, so workload
    installs — which place items by index into the context's enclosure
    list — land every initial placement on the HDD tier, exactly as on
    a single-tier system.  Flash devices are named ``flash-NN`` and
    archive devices ``arc-NN``; data only reaches them through
    promote/demote/archive/replicate actions.

    ``flash_count`` / ``archive_count`` may be zero (the tier is then
    simply absent, and tier actions targeting it are rejected by the
    executor), which is how the chaos frontier sweeps tier shapes.
    Per-device tier tracking on the controller is always armed, so
    per-tier service books and the auditor's archive-service check are
    live.
    """
    if hdd_count <= 0:
        raise ValidationError("hdd_count must be positive")
    if flash_count < 0 or archive_count < 0:
        raise ValidationError("flash_count and archive_count must be >= 0")
    name_prefix = f"{array_id}:" if array_id is not None else ""
    hdds: list[DiskEnclosure] = [
        DiskEnclosure(
            name=f"{name_prefix}{enclosure_prefix}-{i:02d}",
            power_model=config.enclosure_power,
            iops_random=config.service_iops_random,
            iops_sequential=config.service_iops_sequential,
            capacity_bytes=config.enclosure_size_bytes,
            spin_down_timeout=config.spin_down_timeout,
        )
        for i in range(hdd_count)
    ]
    flashes: list[DiskEnclosure] = [
        FlashTier(
            name=f"{name_prefix}flash-{i:02d}",
            capacity_bytes=config.flash_capacity_bytes,
        )
        for i in range(flash_count)
    ]
    archives: list[DiskEnclosure] = [
        ArchiveTier(
            name=f"{name_prefix}arc-{i:02d}",
            capacity_bytes=config.archive_capacity_bytes,
        )
        for i in range(archive_count)
    ]
    enclosures = hdds + flashes + archives
    tiers: list[StorageTier] = []
    if flashes:
        tiers.append(
            StorageTier(
                name="flash",
                kind=TierKind.FLASH,
                devices=tuple(device.name for device in flashes),
                cost_per_byte=FLASH_COST_PER_BYTE,
            )
        )
    tiers.append(
        StorageTier(
            name="hdd",
            kind=TierKind.HDD,
            devices=tuple(device.name for device in hdds),
            cost_per_byte=HDD_COST_PER_BYTE,
        )
    )
    if archives:
        tiers.append(
            StorageTier(
                name="archive",
                kind=TierKind.ARCHIVE,
                devices=tuple(device.name for device in archives),
                cost_per_byte=ARCHIVE_COST_PER_BYTE,
            )
        )
    virtualization = BlockVirtualization(enclosures, tiers=tuple(tiers))
    for enclosure in enclosures:
        virtualization.create_volume(f"vol/{enclosure.name}", enclosure.name)
    cache = StorageCache(
        total_bytes=config.storage_cache_bytes,
        preload_bytes=config.preload_cache_bytes,
        write_delay_bytes=config.write_delay_cache_bytes,
        dirty_block_rate=config.dirty_block_rate,
    )
    storage_monitor = StorageMonitor(enclosures)
    controller = StorageController(
        virtualization,
        cache,
        migration_throughput_bps=config.migration_throughput_bps,
        physical_tap=storage_monitor.on_physical,
        retry_backoff_base=config.fault_backoff_base,
        retry_backoff_cap=config.fault_backoff_cap,
    )
    controller.set_physical_tap_fast(storage_monitor.on_physical_fast)
    controller.enable_tier_tracking(
        frozenset(device.name for device in archives)
    )
    fault_clock: FaultClock | None = None
    if faults is not None and faults:
        fault_clock = FaultClock(faults)
        for enclosure in enclosures:
            enclosure.set_fault_clock(fault_clock)
        controller.set_fault_clock(fault_clock)
    return SimulationContext(
        config=config,
        virtualization=virtualization,
        cache=cache,
        controller=controller,
        app_monitor=ApplicationMonitor(),
        storage_monitor=storage_monitor,
        migration_engine=MigrationEngine(controller),
        meter=PowerMeter(enclosures, config.controller_power),
        fault_clock=fault_clock,
        array_id=array_id,
    )


def default_volume(enclosure_name: str) -> str:
    """Name of the default volume :func:`build_context` creates."""
    return f"vol/{enclosure_name}"
