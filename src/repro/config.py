"""Configuration for the energy-efficient storage management system.

:class:`EcoStorConfig` carries the paper's Table II parameter values
(break-even time, cache partition sizes, dirty-block rate, monitoring
period, the PDC/DDR baseline parameters, ...), and
:class:`SimulationScale` records how IOPS-denominated quantities are scaled
down so a full evaluation replays ~10^5 I/Os instead of the testbed's
10^7-10^8 (see DESIGN.md §2, "Scale note").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import units
from repro.errors import ConfigurationError
from repro.storage.power import (
    ControllerPowerModel,
    PowerModel,
)


@dataclass(frozen=True)
class SimulationScale:
    """Scale factor between testbed IOPS and simulated IOPS.

    The simulator keeps the paper's *durations* (virtual time is free) but
    issues fewer I/Os per second.  Every threshold measured in IOPS must be
    scaled by the same factor for the algorithms to behave identically:
    the per-enclosure service capacity ``O`` and DDR's TargetTH/LowTH.

    ``iops_factor = simulated IOPS / testbed IOPS``.
    """

    iops_factor: float = 1.0 / 900.0
    #: Data-size scale applied by the workload generators, so migration
    #: and preload volumes stay proportionate to the scaled I/O rates
    #: (a copy's wall-clock time is size / bandwidth, which does not
    #: scale with IOPS).
    size_factor: float = 1.0 / 8.0

    def __post_init__(self) -> None:
        if not 0 < self.iops_factor <= 1:
            raise ConfigurationError(
                f"iops_factor must be in (0, 1], got {self.iops_factor}"
            )
        if not 0 < self.size_factor <= 1:
            raise ConfigurationError(
                f"size_factor must be in (0, 1], got {self.size_factor}"
            )

    def iops(self, paper_value: float) -> float:
        """Scale a paper IOPS figure down to the simulated regime."""
        return paper_value * self.iops_factor


#: Scale used by the shipped experiments: 1/900 of testbed IOPS puts
#: DDR's LowTH at 0.25 simulated IOPS and one enclosure's planning IOPS
#: at 1.0, keeping the largest run (File Server, 6 h of virtual time)
#: around 1.3 x 10^5 replayed events.
DEFAULT_SCALE = SimulationScale()


@dataclass(frozen=True)
class EcoStorConfig:
    """Parameters of the proposed method (paper Table II) plus baselines.

    IOPS-valued fields are stored at *paper* (testbed) magnitude; call
    :meth:`scaled` to obtain a config whose IOPS fields match a
    :class:`SimulationScale`.
    """

    # --- power management (Table II) -----------------------------------
    break_even_time: float = 52.0
    #: Idle time after which a power-off-enabled enclosure spins down.
    #: The paper sets this equal to the break-even time.
    spin_down_timeout: float = 52.0
    #: Fraction of the break-even time between §V-D pattern-change
    #: trigger evaluations.  Trigger checks are cheap but run per I/O;
    #: a few per break-even period is enough to catch a pattern shift
    #: well before the energy balance of a wrong placement flips.
    trigger_check_fraction: float = 0.25
    #: Maximum IOPS one disk enclosure can serve for random I/O.
    max_iops_random: float = 900.0
    #: Maximum IOPS one disk enclosure can serve for sequential I/O.
    max_iops_sequential: float = 2800.0
    #: Usable volume size per disk enclosure.
    enclosure_size_bytes: int = int(1.7 * units.TB)
    #: Total battery-backed storage-cache capacity.
    storage_cache_bytes: int = 2 * units.GB
    #: Cache partition reserved for the write-delay function.
    write_delay_cache_bytes: int = 500 * units.MB
    #: Cache partition reserved for the preload function.
    preload_cache_bytes: int = 500 * units.MB
    #: Fraction of the write-delay partition that may hold dirty blocks
    #: before a bulk flush is triggered.
    dirty_block_rate: float = 0.5
    #: Multiplier applied to the average Long Interval when computing the
    #: next monitoring period (must be > 1; paper uses 1.2).
    monitoring_alpha: float = 1.2
    #: Initial monitoring period (ten times the break-even time).
    initial_monitoring_period: float = 520.0
    #: Upper bound on the adaptive monitoring period, to keep the manager
    #: responsive on workloads with very long intervals.
    max_monitoring_period: float = 2.0 * units.HOUR
    #: Average throughput allotted to data-item migration so application
    #: I/O is not disturbed (paper §V-A throttles migration; ~40 % of an
    #: enclosure's bulk bandwidth).
    migration_throughput_bps: float = 60.0 * units.MB
    #: Physical service headroom above the Table II planning IOPS.  The
    #: Table II "maximum IOPS" is the threshold placement plans against
    #: ("the capacity of the served IOPS"); a 15-HDD RAID-6 enclosure can
    #: physically burst above it, and without that headroom consolidating
    #: P3 items up to the planning bound would saturate the hot
    #: enclosures' queues — far beyond the paper's measured single-digit
    #: throughput loss.
    service_headroom: float = 2.0

    # --- fault tolerance (repro.faults) ---------------------------------
    #: Base wait of the controller's capped exponential backoff between
    #: spin-up retry attempts (virtual-time seconds).
    fault_backoff_base: float = 1.0
    #: Cap on a single backoff wait.
    fault_backoff_cap: float = 64.0
    #: Spin-up failures within the sliding window that trip degraded
    #: mode: the policy stops enabling power-off on that enclosure.
    spin_up_failure_threshold: int = 3
    #: Sliding window over which recent spin-up failures are counted.
    spin_up_failure_window: float = 30.0 * units.MINUTE
    #: Cool-down during which degraded mode keeps vetoing power-off
    #: enablement for a tripped enclosure.
    power_off_cooldown: float = 30.0 * units.MINUTE

    # --- multi-tier lifecycle (repro.storage.tiers) ---------------------
    #: Checkpoint period of the tiered lifecycle policy.
    tier_monitoring_period: float = 10.0 * units.MINUTE
    #: Half-life of the exponential temperature decay: an untouched
    #: item's temperature halves every ``tier_half_life`` seconds.
    tier_half_life: float = 30.0 * units.MINUTE
    #: Temperature (decayed access count, paper-magnitude IOPS regime)
    #: at or above which an item is HOT and belongs on flash.
    tier_hot_temperature: float = 1800.0
    #: Temperature below which an item is COLD; between the two
    #: thresholds the item is WARM and stays on powered HDD.
    tier_cold_temperature: float = 90.0
    #: Consecutive COLD checkpoint classifications before an item is
    #: FROZEN and becomes an archive candidate.
    tier_frozen_periods: int = 3
    #: Capacity of one flash-tier device.
    flash_capacity_bytes: int = int(0.25 * units.TB)
    #: Capacity of one archive-tier device.
    archive_capacity_bytes: int = int(10 * units.TB)

    # --- baselines ------------------------------------------------------
    #: PDC re-ranking period (paper: 30 min, from [11]).
    pdc_monitoring_period: float = 30.0 * units.MINUTE
    #: DDR target throughput threshold in IOPS (paper: 450).
    ddr_target_th: float = 450.0
    #: DDR monitoring period.  The paper reports ~90 000 placement
    #: determinations over 1.8-6 h runs, i.e. a sub-second period.
    ddr_monitoring_period: float = 0.25

    # --- hardware models ------------------------------------------------
    enclosure_power: PowerModel = field(default_factory=PowerModel)
    controller_power: ControllerPowerModel = field(
        default_factory=ControllerPowerModel
    )

    def __post_init__(self) -> None:
        if self.break_even_time <= 0:
            raise ConfigurationError("break_even_time must be positive")
        if self.spin_down_timeout < 0:
            raise ConfigurationError("spin_down_timeout must be non-negative")
        if not 0 < self.trigger_check_fraction <= 1:
            raise ConfigurationError(
                "trigger_check_fraction must be in (0, 1], got "
                f"{self.trigger_check_fraction}"
            )
        if self.monitoring_alpha <= 1.0:
            raise ConfigurationError(
                f"monitoring_alpha must be > 1, got {self.monitoring_alpha}"
            )
        if not 0 < self.dirty_block_rate <= 1:
            raise ConfigurationError(
                f"dirty_block_rate must be in (0, 1], got {self.dirty_block_rate}"
            )
        if self.initial_monitoring_period <= 0:
            raise ConfigurationError("initial_monitoring_period must be positive")
        reserved = self.write_delay_cache_bytes + self.preload_cache_bytes
        if reserved > self.storage_cache_bytes:
            raise ConfigurationError(
                "write-delay + preload partitions exceed the storage cache: "
                f"{reserved} > {self.storage_cache_bytes}"
            )
        if self.max_iops_random <= 0 or self.max_iops_sequential <= 0:
            raise ConfigurationError("IOPS capacities must be positive")
        if self.ddr_target_th <= 0:
            raise ConfigurationError("ddr_target_th must be positive")
        if self.service_headroom < 1.0:
            raise ConfigurationError(
                f"service_headroom must be >= 1, got {self.service_headroom}"
            )
        if self.fault_backoff_base <= 0 or (
            self.fault_backoff_cap < self.fault_backoff_base
        ):
            raise ConfigurationError(
                "fault backoff requires 0 < base <= cap, got "
                f"base={self.fault_backoff_base}, cap={self.fault_backoff_cap}"
            )
        if self.spin_up_failure_threshold < 1:
            raise ConfigurationError(
                "spin_up_failure_threshold must be >= 1, got "
                f"{self.spin_up_failure_threshold}"
            )
        if self.tier_monitoring_period <= 0 or self.tier_half_life <= 0:
            raise ConfigurationError(
                "tier_monitoring_period and tier_half_life must be positive, "
                f"got {self.tier_monitoring_period} and {self.tier_half_life}"
            )
        if not 0 < self.tier_cold_temperature < self.tier_hot_temperature:
            raise ConfigurationError(
                "tier temperatures must satisfy 0 < cold < hot, got "
                f"cold={self.tier_cold_temperature}, "
                f"hot={self.tier_hot_temperature}"
            )
        if self.tier_frozen_periods < 1:
            raise ConfigurationError(
                f"tier_frozen_periods must be >= 1, got {self.tier_frozen_periods}"
            )
        if self.flash_capacity_bytes <= 0 or self.archive_capacity_bytes <= 0:
            raise ConfigurationError(
                "flash_capacity_bytes and archive_capacity_bytes must be "
                f"positive, got {self.flash_capacity_bytes} and "
                f"{self.archive_capacity_bytes}"
            )
        if self.spin_up_failure_window <= 0 or self.power_off_cooldown <= 0:
            raise ConfigurationError(
                "spin_up_failure_window and power_off_cooldown must be "
                "positive, got "
                f"{self.spin_up_failure_window} and {self.power_off_cooldown}"
            )
        # The physical break-even of the power model should agree with the
        # algorithmic parameter to within 20 %, otherwise the placement
        # decisions optimise for the wrong hardware.
        physical = self.enclosure_power.break_even_time
        if abs(physical - self.break_even_time) > 0.2 * self.break_even_time:
            raise ConfigurationError(
                f"power model break-even ({physical:.1f} s) is inconsistent "
                f"with configured break_even_time ({self.break_even_time:.1f} s)"
            )

    @property
    def service_iops_random(self) -> float:
        """Physical random-I/O service rate of one enclosure."""
        return self.max_iops_random * self.service_headroom

    @property
    def service_iops_sequential(self) -> float:
        """Physical sequential-I/O service rate of one enclosure."""
        return self.max_iops_sequential * self.service_headroom

    @property
    def ddr_low_th(self) -> float:
        """DDR's cold-enclosure threshold: half of TargetTH (paper §VII)."""
        return self.ddr_target_th / 2.0

    @property
    def lru_cache_bytes(self) -> int:
        """Cache left for the general-purpose LRU after the partitions."""
        return (
            self.storage_cache_bytes
            - self.write_delay_cache_bytes
            - self.preload_cache_bytes
        )

    def scaled(self, scale: SimulationScale = DEFAULT_SCALE) -> "EcoStorConfig":
        """Return a copy with IOPS-denominated fields scaled for simulation.

        Time- and byte-denominated fields are untouched (the simulator
        keeps real durations and real data sizes).
        """
        return replace(
            self,
            max_iops_random=scale.iops(self.max_iops_random),
            max_iops_sequential=scale.iops(self.max_iops_sequential),
            ddr_target_th=scale.iops(self.ddr_target_th),
            tier_hot_temperature=scale.iops(self.tier_hot_temperature),
            tier_cold_temperature=scale.iops(self.tier_cold_temperature),
        )


#: The paper's Table II configuration, at testbed magnitude.
PAPER_CONFIG = EcoStorConfig()

#: The same configuration scaled for the shipped simulations.
DEFAULT_CONFIG = PAPER_CONFIG.scaled()
