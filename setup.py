"""Setup shim for environments whose pip/setuptools cannot do PEP-660
editable installs (no ``wheel`` available offline).  Configuration lives
in ``pyproject.toml``; this file only enables ``python setup.py develop``.
"""

from setuptools import setup

setup()
